//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for
//! the value-based traits in the sibling `serde` stub. Because the
//! generated impls only need item/field *names* (never types — trait
//! dispatch and inference supply those), the input is parsed with a
//! small hand-rolled token walker instead of `syn`.
//!
//! Supported shapes: unit/newtype/tuple/named-field structs and enums
//! with unit/newtype/tuple/struct variants (externally tagged, like
//! serde's default). Generics and `#[serde(...)]` attributes are not
//! supported — the workspace uses neither.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A parsed `struct`/`enum` definition.
struct Input {
    name: String,
    kind: Kind,
}

enum Kind {
    UnitStruct,
    TupleStruct(usize),
    Struct(Vec<String>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

/// Derive `serde::Serialize` (value-based).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("generated impl parses")
}

/// Derive `serde::Deserialize` (value-based).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("generated impl parses")
}

// ── parsing ───────────────────────────────────────────────────────────

fn parse_input(input: TokenStream) -> Input {
    let mut tokens = input.into_iter().peekable();
    // Scan past attributes/visibility to the `struct`/`enum` keyword.
    let is_enum = loop {
        match tokens.next() {
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => break false,
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => break true,
            Some(_) => continue,
            None => panic!("derive input has no struct/enum keyword"),
        }
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name, found {other:?}"),
    };
    if matches!(&tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive stub does not support generic type `{name}`");
    }
    let kind = if is_enum {
        let body = expect_brace(tokens.next(), &name);
        Kind::Enum(parse_variants(body))
    } else {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Struct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::UnitStruct,
            other => panic!("unexpected struct body for `{name}`: {other:?}"),
        }
    };
    Input { name, kind }
}

fn expect_brace(token: Option<TokenTree>, name: &str) -> TokenStream {
    match token {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!("expected a braced body for `{name}`, found {other:?}"),
    }
}

/// Field names from `a: T, pub b: U, ...` (attributes skipped, types
/// consumed with angle-bracket depth tracking so `Map<K, V>` commas
/// don't split fields).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("expected field name, found {other}"),
            None => break,
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected ':' after field `{name}`, found {other:?}"),
        }
        skip_type(&mut tokens);
        fields.push(name);
    }
    fields
}

/// Tuple-struct/-variant arity from `T, U, ...`.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut tokens = stream.into_iter().peekable();
    let mut count = 0;
    loop {
        skip_attrs_and_vis(&mut tokens);
        if tokens.peek().is_none() {
            break;
        }
        skip_type(&mut tokens);
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("expected variant name, found {other}"),
            None => break,
        };
        let kind = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                tokens.next();
                VariantKind::Struct(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                tokens.next();
                VariantKind::Tuple(arity)
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional `= discriminant` and the trailing comma.
        for token in tokens.by_ref() {
            if matches!(&token, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
        variants.push(Variant { name, kind });
    }
    variants
}

/// Skip `#[...]` attributes (incl. doc comments) and `pub`/`pub(...)`.
fn skip_attrs_and_vis(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if matches!(tokens.peek(), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Parenthesis)
                {
                    tokens.next();
                }
            }
            _ => return,
        }
    }
}

/// Consume one type, stopping after the comma that ends it (or at the
/// end of the stream). Tracks `<`/`>` depth; groups arrive as single
/// trees so parens/brackets need no tracking.
fn skip_type(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    let mut angle_depth = 0i32;
    for token in tokens.by_ref() {
        if let TokenTree::Punct(p) = &token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
    }
}

// ── code generation ───────────────────────────────────────────────────

const VALUE: &str = "::serde::Value";
const MAP: &str = "::std::collections::BTreeMap<::std::string::String, ::serde::Value>";

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::UnitStruct => format!("{VALUE}::Null"),
        Kind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_owned(),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("{VALUE}::Array(::std::vec![{}])", items.join(", "))
        }
        Kind::Struct(fields) => gen_fields_to_object(fields, "&self."),
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| gen_variant_serialize(name, v))
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
           fn to_value(&self) -> {VALUE} {{ {body} }} \
         }}"
    )
}

/// `{ let mut __m = Map::new(); __m.insert(...); Value::Object(__m) }`
/// with each field referenced as `{prefix}{field}`.
fn gen_fields_to_object(fields: &[String], prefix: &str) -> String {
    let mut out = format!("{{ let mut __m: {MAP} = ::std::collections::BTreeMap::new(); ");
    for field in fields {
        out.push_str(&format!(
            "__m.insert(::std::string::String::from(\"{field}\"), \
             ::serde::Serialize::to_value({prefix}{field})); "
        ));
    }
    out.push_str(&format!("{VALUE}::Object(__m) }}"));
    out
}

fn gen_variant_serialize(name: &str, variant: &Variant) -> String {
    let vname = &variant.name;
    match &variant.kind {
        VariantKind::Unit => {
            format!("{name}::{vname} => {VALUE}::String(::std::string::String::from(\"{vname}\")),")
        }
        VariantKind::Tuple(n) => {
            let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
            let payload = if *n == 1 {
                "::serde::Serialize::to_value(__f0)".to_owned()
            } else {
                let items: Vec<String> = binders
                    .iter()
                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                    .collect();
                format!("{VALUE}::Array(::std::vec![{}])", items.join(", "))
            };
            format!(
                "{name}::{vname}({}) => {}, ",
                binders.join(", "),
                wrap_tagged(vname, &payload)
            )
        }
        VariantKind::Struct(fields) => {
            let payload = gen_fields_to_object(fields, "");
            format!(
                "{name}::{vname} {{ {} }} => {}, ",
                fields.join(", "),
                wrap_tagged(vname, &payload)
            )
        }
    }
}

/// Externally-tagged wrapper: `{"Variant": payload}`.
fn wrap_tagged(vname: &str, payload: &str) -> String {
    format!(
        "{{ let mut __outer: {MAP} = ::std::collections::BTreeMap::new(); \
           __outer.insert(::std::string::String::from(\"{vname}\"), {payload}); \
           {VALUE}::Object(__outer) }}"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::UnitStruct => format!(
            "match __v {{ {VALUE}::Null => ::std::result::Result::Ok({name}), \
               __other => ::std::result::Result::Err(\
                 ::serde::Error::expected(\"null\", __other, \"{name}\")) }}"
        ),
        Kind::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "{{ let __items = __v.as_array().ok_or_else(|| \
                     ::serde::Error::expected(\"array\", __v, \"{name}\"))?; \
                   if __items.len() != {n} {{ return ::std::result::Result::Err(\
                     ::serde::Error::new(\"wrong tuple length for {name}\")); }} \
                   ::std::result::Result::Ok({name}({})) }}",
                items.join(", ")
            )
        }
        Kind::Struct(fields) => format!(
            "{{ let __obj = __v.as_object().ok_or_else(|| \
                 ::serde::Error::expected(\"object\", __v, \"{name}\"))?; \
               ::std::result::Result::Ok({name} {{ {} }}) }}",
            gen_fields_from_object(name, fields)
        ),
        Kind::Enum(variants) => gen_enum_deserialize(name, variants),
    };
    format!(
        "#[automatically_derived] impl ::serde::Deserialize for {name} {{ \
           fn from_value(__v: &{VALUE}) -> ::std::result::Result<Self, ::serde::Error> {{ \
             {body} \
           }} \
         }}"
    )
}

/// `field: <lookup with Option-aware missing handling>,` per field.
fn gen_fields_from_object(context: &str, fields: &[String]) -> String {
    fields
        .iter()
        .map(|field| {
            format!(
                "{field}: match __obj.get(\"{field}\") {{ \
                   ::std::option::Option::Some(__x) => \
                     ::serde::Deserialize::from_value(__x)?, \
                   ::std::option::Option::None => \
                     match ::serde::Deserialize::absent() {{ \
                       ::std::option::Option::Some(__d) => __d, \
                       ::std::option::Option::None => \
                         return ::std::result::Result::Err(\
                           ::serde::Error::missing_field(\"{field}\", \"{context}\")), \
                     }}, \
                 }}, "
            )
        })
        .collect()
}

fn gen_enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let unit_arms: String = variants
        .iter()
        .filter(|v| matches!(v.kind, VariantKind::Unit))
        .map(|v| {
            format!(
                "\"{0}\" => ::std::result::Result::Ok({name}::{0}), ",
                v.name
            )
        })
        .collect();
    let tagged_arms: String = variants
        .iter()
        .filter_map(|v| match &v.kind {
            VariantKind::Unit => None,
            VariantKind::Tuple(1) => Some(format!(
                "\"{0}\" => ::std::result::Result::Ok(\
                   {name}::{0}(::serde::Deserialize::from_value(__payload)?)), ",
                v.name
            )),
            VariantKind::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                    .collect();
                Some(format!(
                    "\"{0}\" => {{ let __items = __payload.as_array().ok_or_else(|| \
                         ::serde::Error::expected(\"array\", __payload, \"{name}::{0}\"))?; \
                       if __items.len() != {n} {{ return ::std::result::Result::Err(\
                         ::serde::Error::new(\"wrong tuple length for {name}::{0}\")); }} \
                       ::std::result::Result::Ok({name}::{0}({1})) }} ",
                    v.name,
                    items.join(", ")
                ))
            }
            VariantKind::Struct(fields) => Some(format!(
                "\"{0}\" => {{ let __obj = __payload.as_object().ok_or_else(|| \
                     ::serde::Error::expected(\"object\", __payload, \"{name}::{0}\"))?; \
                   ::std::result::Result::Ok({name}::{0} {{ {1} }}) }} ",
                v.name,
                gen_fields_from_object(&format!("{name}::{}", v.name), fields)
            )),
        })
        .collect();
    format!(
        "match __v {{ \
           {VALUE}::String(__s) => match __s.as_str() {{ \
             {unit_arms} \
             __other => ::std::result::Result::Err(::serde::Error::new(\
               ::std::format!(\"unknown variant `{{__other}}` of {name}\"))), \
           }}, \
           {VALUE}::Object(__m) if __m.len() == 1 => {{ \
             let (__k, __payload) = __m.iter().next().expect(\"length checked\"); \
             match __k.as_str() {{ \
               {tagged_arms} \
               __other => ::std::result::Result::Err(::serde::Error::new(\
                 ::std::format!(\"unknown variant `{{__other}}` of {name}\"))), \
             }} \
           }} \
           __other => ::std::result::Result::Err(\
             ::serde::Error::expected(\"enum value\", __other, \"{name}\")), \
         }}"
    )
}
