//! Offline stand-in for `criterion`.
//!
//! Keeps the API shape the workspace's benches use (`Criterion`,
//! groups, `iter`/`iter_batched`, throughput, `criterion_group!` /
//! `criterion_main!`) but replaces the statistics engine with a plain
//! best-of-N wall-clock measurement printed to stdout. Good enough to
//! keep benches compiling and runnable offline; not a measurement
//! tool of record.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP_ITERS: u64 = 3;
const MEASURE_ITERS: u64 = 30;

/// Entry point handed to each benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut bench: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, None, &mut bench);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the throughput used to annotate subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one named benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, mut bench: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_one(&full, self.throughput, &mut bench);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut bench: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.throughput, &mut |b| bench(b, input));
        self
    }

    /// End the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Identifier combining a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            text: format!("{function_name}/{parameter}"),
        }
    }

    /// Just the parameter.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Units processed per iteration, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Logical elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// How per-iteration setup cost is batched (accepted, not used).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Timing driver passed to each benchmark closure.
pub struct Bencher {
    best: Option<Duration>,
}

impl Bencher {
    /// Measure `routine`, keeping the best observed iteration time.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        for _ in 0..MEASURE_ITERS {
            let start = Instant::now();
            black_box(routine());
            self.record(start.elapsed());
        }
    }

    /// Measure `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..WARMUP_ITERS {
            black_box(routine(setup()));
        }
        for _ in 0..MEASURE_ITERS {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.record(start.elapsed());
        }
    }

    fn record(&mut self, elapsed: Duration) {
        if self.best.is_none_or(|b| elapsed < b) {
            self.best = Some(elapsed);
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, throughput: Option<Throughput>, bench: &mut F) {
    let mut bencher = Bencher { best: None };
    bench(&mut bencher);
    match bencher.best {
        Some(best) => {
            let rate = match throughput {
                Some(Throughput::Elements(n)) if best.as_secs_f64() > 0.0 => {
                    format!("  {:.0} elem/s", n as f64 / best.as_secs_f64())
                }
                Some(Throughput::Bytes(n)) if best.as_secs_f64() > 0.0 => {
                    format!("  {:.0} B/s", n as f64 / best.as_secs_f64())
                }
                _ => String::new(),
            };
            println!("bench {name}: best {best:?}{rate}");
        }
        None => println!("bench {name}: no measurement"),
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_and_group_run() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Elements(4));
        g.bench_with_input(BenchmarkId::new("param", 4), &4u32, |b, &n| {
            b.iter_batched(|| n, |v| v * 2, BatchSize::SmallInput);
        });
        g.finish();
    }
}
