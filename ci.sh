#!/bin/sh
# Pre-merge gate for the loramon workspace. Run before every merge:
#
#   ./ci.sh
#
# Stages, in order (each must pass):
#   1. cargo fmt --check     — formatting is canonical
#   2. cargo xtask lint      — determinism/robustness/hygiene static pass
#   3. cargo build --release — tier-1 build
#   4. cargo test -q         — tier-1 tests (root package)
#   5. cargo test --workspace -q — every crate's suite
#   6. cargo xtask determinism — double-run replay gate, both delivery paths
#   7. cargo xtask chaos     — replayed chaos smoke (loss+outage+crashes)
set -eu

step() {
    printf '\n==> %s\n' "$*"
    "$@"
}

step cargo fmt --all --check
step cargo xtask lint
step cargo build --release
step cargo test -q
step cargo test --workspace -q
step cargo xtask determinism
step cargo xtask chaos

printf '\nci.sh: all stages passed\n'
