#!/bin/sh
# Pre-merge gate for the loramon workspace. Run before every merge:
#
#   ./ci.sh
#
# Stages, in order (each must pass):
#   1. cargo fmt --check     — formatting is canonical
#   2. cargo xtask lint --format json — machine-readable pass, kept at target/lint.json
#   3. cargo xtask lint      — determinism/layering/schema/hygiene static pass
#   4. cargo build --release — tier-1 build
#   5. cargo test -q         — tier-1 tests (root package)
#   6. cargo test --workspace -q — every crate's suite
#   7. cargo xtask determinism — double-run replay gate, both delivery paths
#   8. cargo xtask chaos     — replayed chaos smoke (loss+outage+crashes)
set -eu

step() {
    printf '\n==> %s\n' "$*"
    "$@"
}

step cargo fmt --all --check

# Machine-readable lint first: the JSON report lands in target/lint.json
# for tooling to pick up even when the human-readable pass below fails.
mkdir -p target
printf '\n==> cargo xtask lint --format json > target/lint.json\n'
cargo xtask lint --format json > target/lint.json || true

step cargo xtask lint
step cargo build --release
step cargo test -q
step cargo test --workspace -q
step cargo xtask determinism
step cargo xtask chaos

# Query-engine smoke: the indexed/naive equivalence asserts run inside
# the benchmark, and BENCH_query.json lands at the workspace root.
step env LORAMON_QUERY_BENCH=fast cargo bench -p loramon-bench --bench server_ingest

printf '\nci.sh: all stages passed\n'
