//! Integration tests of the extension features: mobility, interference,
//! record filters, archive replay, and ADR.

use loramon::core::{MonitorConfig, RecordFilter, UplinkModel};
use loramon::phy::{AdrConfig, AdrController, Position, SpreadingFactor};
use loramon::scenario::{run_scenario, ScenarioConfig, Walk};
use loramon::server::{archive, MonitorServer, ServerConfig, Window};
use loramon::sim::{NodeId, SimTime};
use std::time::Duration;

#[test]
fn walking_node_shows_decaying_rssi_at_server() {
    let config = ScenarioConfig::line(3, 200.0, 101)
        .with_duration(Duration::from_secs(2400))
        .with_uplink(UplinkModel::perfect())
        .with_walk(Walk {
            node_index: 0,
            depart: SimTime::from_secs(300),
            to: Position::new(-3000.0, 0.0),
            speed_mps: 2.0,
            step: Duration::from_secs(20),
        });
    let result = run_scenario(&config);
    let mean_rssi = |from_s: u64, to_s: u64| {
        result
            .server
            .link_stats(Window {
                from: SimTime::from_secs(from_s),
                to: SimTime::from_secs(to_s),
            })
            .into_iter()
            .find(|l| l.from == NodeId(1))
            .map(|l| l.mean_rssi_dbm)
    };
    let early = mean_rssi(0, 300).expect("no early link");
    // `None` means the walker went fully out of range — also a pass.
    if let Some(late_rssi) = mean_rssi(1500, 2400) {
        assert!(
            late_rssi < early - 15.0,
            "no visible decay: early {early}, late {late_rssi}"
        );
    }
}

#[test]
fn filtered_client_reports_fewer_records_but_same_data_traffic() {
    let base = ScenarioConfig::line(3, 500.0, 103)
        .with_duration(Duration::from_secs(1200))
        .with_uplink(UplinkModel::perfect());
    let full = run_scenario(&base);
    let filtered = run_scenario(
        &base
            .clone()
            .with_monitor(MonitorConfig::new().with_filter(RecordFilter::data_only())),
    );

    let records = |r: &loramon::scenario::ScenarioResult| -> u64 {
        r.server.node_summaries().iter().map(|s| s.records).sum()
    };
    assert!(
        records(&filtered) * 2 < records(&full),
        "filter barely reduced volume: {} vs {}",
        records(&filtered),
        records(&full)
    );

    // Both see the same data-message flow end to end.
    use loramon::mesh::PacketType;
    let data = |r: &loramon::scenario::ScenarioResult| {
        r.server
            .type_breakdown(None, Window::all())
            .get(&PacketType::Data)
            .copied()
            .unwrap_or(0)
    };
    assert_eq!(data(&full), data(&filtered), "data visibility diverged");
    // But the filtered run has no routing records at all.
    assert_eq!(
        filtered
            .server
            .type_breakdown(None, Window::all())
            .get(&PacketType::Routing)
            .copied()
            .unwrap_or(0),
        0
    );
}

#[test]
fn archive_roundtrip_preserves_every_query_result() {
    let mut config = ScenarioConfig::line(3, 600.0, 107)
        .with_duration(Duration::from_secs(900))
        .with_uplink(UplinkModel::perfect());
    config.server.archive = true;
    let result = run_scenario(&config);

    // Export → import → replay.
    let mut buf = Vec::new();
    archive::write_jsonl(result.server.archive_entries(), &mut buf).unwrap();
    let entries = archive::read_jsonl(buf.as_slice()).unwrap();
    let replica = MonitorServer::new(ServerConfig::default());
    let (accepted, dup, invalid) = archive::replay(&replica, entries);
    assert!(accepted > 0);
    assert_eq!((dup, invalid), (0, 0));

    // The replica answers queries identically.
    assert_eq!(replica.total_records(), result.server.total_records());
    assert_eq!(replica.node_ids(), result.server.node_ids());
    assert_eq!(
        replica.link_stats(Window::all()),
        result.server.link_stats(Window::all())
    );
    assert_eq!(
        replica.series(None, None, Window::all(), Duration::from_secs(60)),
        result
            .server
            .series(None, None, Window::all(), Duration::from_secs(60))
    );
    assert_eq!(
        replica.topology(Window::all()),
        result.server.topology(Window::all())
    );
}

#[test]
fn adr_controller_tracks_a_real_link() {
    // Feed the controller the SNRs the monitor records on a strong link;
    // it should recommend dropping from SF12 to SF7.
    let config = ScenarioConfig::line(2, 150.0, 109).with_uplink(UplinkModel::perfect());
    let result = run_scenario(&config);
    let mut adr = AdrController::new(AdrConfig::default());
    // Pull SNR samples out of the stored incoming records via link stats
    // + histogram: use the mean SNR as a representative feed.
    let link = result
        .server
        .link_stats(Window::all())
        .into_iter()
        .find(|l| l.from == NodeId(1) && l.to == NodeId(2))
        .expect("link missing");
    for _ in 0..10 {
        adr.record_snr(link.mean_snr_db);
    }
    // 150 m link: SNR is strongly positive → SF7.
    assert_eq!(
        adr.recommend(SpreadingFactor::Sf12),
        Some(SpreadingFactor::Sf7)
    );
}

#[test]
fn occupancy_estimate_tracks_ground_truth_airtime() {
    let config = ScenarioConfig::line(3, 500.0, 113)
        .with_duration(Duration::from_secs(1800))
        .with_uplink(UplinkModel::perfect());
    let result = run_scenario(&config);
    let occ =
        result
            .server
            .channel_occupancy(Window::all(), &config.radio, Duration::from_secs(1800));
    let estimated_airtime_s: f64 = occ.iter().map(|(_, f)| f * 1800.0).sum();
    let truth_s = result.ground_truth.airtime_us as f64 / 1e6;
    // The estimate reconstructs airtime from reported Out records; with a
    // perfect uplink it should land within 15% of ground truth (residual
    // gap: records still buffered client-side at the end of the run).
    let ratio = estimated_airtime_s / truth_s;
    assert!(
        (0.85..=1.05).contains(&ratio),
        "estimate {estimated_airtime_s:.1}s vs truth {truth_s:.1}s (ratio {ratio:.2})"
    );
}

#[test]
fn status_series_reaches_server_in_order() {
    let config = ScenarioConfig::line(2, 300.0, 127)
        .with_duration(Duration::from_secs(900))
        .with_uplink(UplinkModel::perfect());
    let result = run_scenario(&config);
    for &id in &result.node_ids {
        let series = result.server.status_series(id);
        assert!(series.len() >= 20, "only {} status points", series.len());
        assert!(series.windows(2).all(|w| w[0].at <= w[1].at));
        // Uptime-like signals: reachability settles at n-1.
        assert_eq!(series.last().unwrap().reachable, 1);
    }
}

#[test]
fn corrupted_foreign_traffic_is_counted_not_crashing() {
    // A non-mesh transmitter shares the channel: mesh nodes must count
    // decode errors and keep working; the monitor sees nothing of the
    // garbage (it records above the decoder, as real firmware would).
    use loramon::core::MonitorClient;
    use loramon::mesh::{MeshConfig, MeshNode};
    use loramon::phy::RadioConfig;
    use loramon::scenario::MonitoredNode;
    use loramon::sim::{PeriodicSender, SimBuilder};

    let mut sim = SimBuilder::new().seed(211).build();
    let cfg = RadioConfig::mesher_default();
    let make =
        || MeshNode::with_observer(MeshConfig::fast(), MonitorClient::new(MonitorConfig::new()));
    let a = sim.add_node(Position::new(0.0, 0.0), cfg, Box::new(make()));
    let b = sim.add_node(Position::new(300.0, 0.0), cfg, Box::new(make()));
    // The foreigner blasts 8-byte frames (too short for a mesh header).
    sim.add_node(
        Position::new(150.0, 0.0),
        cfg,
        Box::new(PeriodicSender::new(Duration::from_secs(7), 8)),
    );
    sim.run_for(Duration::from_secs(300));

    for id in [a, b] {
        let node: &MonitoredNode = sim.app_as(id).unwrap();
        assert!(
            node.stats().decode_errors > 10,
            "node {id} saw {} decode errors",
            node.stats().decode_errors
        );
        // The mesh still works: routes formed despite the noise.
        assert!(!node.routing_table().is_empty(), "mesh broke under noise");
        // Monitoring only records decodable mesh packets.
        let client = node.observer();
        assert_eq!(
            client.records_captured(),
            node.stats().packets_heard
                + node.stats().routing_sent
                + node.stats().data_sent
                + node.stats().acks_sent
        );
    }
}

#[test]
fn rollup_series_available_when_enabled() {
    let mut config = ScenarioConfig::line(3, 500.0, 131)
        .with_duration(Duration::from_secs(900))
        .with_uplink(UplinkModel::perfect());
    config.server.rollup_bucket = Some(Duration::from_secs(300));
    let result = run_scenario(&config);
    let merged = result.server.rollup_series(None);
    assert!(merged.len() >= 2, "only {} rollup buckets", merged.len());
    let total: u64 = merged.iter().map(|p| p.in_count + p.out_count).sum();
    assert_eq!(total as usize, result.server.total_records());
    // Per-node view sums to the merged view.
    let per_node: u64 = result
        .node_ids
        .iter()
        .flat_map(|&n| result.server.rollup_series(Some(n)))
        .map(|p| p.in_count + p.out_count)
        .sum();
    assert_eq!(per_node, total);
}

#[test]
fn health_goes_red_for_a_dead_node_and_green_for_live_ones() {
    use loramon::scenario::Failure;
    use loramon::server::{HealthLevel, HealthRules};
    let config = ScenarioConfig::line(3, 400.0, 137)
        .with_duration(Duration::from_secs(1200))
        .with_uplink(UplinkModel::perfect())
        .with_failure(Failure {
            node_index: 0,
            at: SimTime::from_secs(300),
            recover_at: None,
        });
    let result = run_scenario(&config);
    let health = result
        .server
        .health(&HealthRules::default(), SimTime::from_secs(1200));
    let level = |n: u16| {
        health
            .iter()
            .find(|h| h.node == NodeId(n))
            .map(|h| h.level)
            .unwrap()
    };
    assert_eq!(level(1), HealthLevel::Red, "{health:#?}");
    assert_eq!(level(2), HealthLevel::Green, "{health:#?}");
    assert_eq!(level(3), HealthLevel::Green, "{health:#?}");
}
