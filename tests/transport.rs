//! End-to-end tests of the acknowledged uplink transport: retries under
//! loss and outages, gap healing from late retransmissions, crash/reboot
//! fault injection, gateway failover, and determinism with the
//! transport enabled.

use loramon::core::{TransportConfig, UplinkModel};
use loramon::scenario::{run_scenario, ScenarioConfig};
use loramon::server::AlertKind;
use loramon::sim::{FaultPlan, NodeId, SimTime};
use std::time::Duration;

/// The acceptance scenario: 10% uplink loss plus a 10-minute total
/// outage. Fire-and-forget loses what the dice and the outage eat;
/// the acked transport retries until essentially everything lands.
fn lossy_outage_config(seed: u64) -> ScenarioConfig {
    ScenarioConfig::line(3, 300.0, seed)
        .with_duration(Duration::from_secs(3600))
        .with_uplink(
            UplinkModel::flaky(0.10, seed ^ 0x5EED)
                .with_outage(SimTime::from_secs(1200), SimTime::from_secs(1800)),
        )
}

#[test]
fn acked_transport_beats_fire_and_forget_under_loss_and_outage() {
    // Baseline: one delivery attempt per report.
    let baseline = run_scenario(&lossy_outage_config(101));
    let baseline_ratio = baseline.delivery_ratio();
    assert!(
        baseline_ratio < 0.92,
        "baseline unexpectedly healthy ({baseline_ratio}); the uplink \
         model is not stressing the transport"
    );

    // Same network, same uplink dice — plus the acked transport.
    let acked = run_scenario(&lossy_outage_config(101).with_transport(TransportConfig::new()));
    let ratio = acked.delivery_ratio();
    assert!(
        ratio >= 0.99,
        "acked transport delivered only {ratio} (baseline {baseline_ratio})"
    );
    assert!(ratio > baseline_ratio);

    // The transport actually worked for its living.
    let stats = acked.transport.expect("transport stats present");
    assert!(stats.retransmissions > 0, "no retries under 10% loss?");
    assert_eq!(stats.evicted_reports, 0, "queue overflowed unexpectedly");

    // Every gap opened by a lost-then-retried report must have healed:
    // no ReportGap condition is still active at the end of the run.
    let active = acked.server.active_alerts();
    assert!(
        !active.iter().any(|(_, k)| *k == AlertKind::ReportGap),
        "unhealed report gaps at run end: {active:?}"
    );
    for s in acked.server.node_summaries() {
        assert_eq!(
            s.missing_reports, 0,
            "node {} still missing reports at run end",
            s.node
        );
    }
}

#[test]
fn late_retransmits_heal_report_gaps() {
    // Heavy loss so first attempts fail often: gaps open when a later
    // report overtakes a lost one, then close when the retry lands.
    let config = ScenarioConfig::line(2, 300.0, 57)
        .with_duration(Duration::from_secs(1200))
        .with_uplink(UplinkModel::flaky(0.30, 99))
        .with_transport(TransportConfig::new());
    let result = run_scenario(&config);

    // Gaps opened mid-run…
    assert!(
        result.alerts.iter().any(|a| a.kind == AlertKind::ReportGap),
        "30% loss never opened a report gap; alerts: {:?}",
        result.alerts
    );
    // …and all healed by the end.
    for s in result.server.node_summaries() {
        assert_eq!(s.missing_reports, 0, "node {} gap never healed", s.node);
    }
    assert!(!result
        .server
        .active_alerts()
        .iter()
        .any(|(_, k)| *k == AlertKind::ReportGap));
    assert_eq!(result.delivery_ratio(), 1.0);
}

#[test]
fn crashed_node_reboots_and_the_server_detects_the_restart() {
    let config = ScenarioConfig::line(3, 300.0, 31)
        .with_duration(Duration::from_secs(1800))
        .with_uplink(UplinkModel::perfect())
        .with_transport(TransportConfig::new())
        .with_fault_plan(FaultPlan::new().with_crash(
            0,
            SimTime::from_secs(600),
            Some(SimTime::from_secs(900)),
        ));
    let result = run_scenario(&config);

    let summary = result
        .server
        .node_summaries()
        .into_iter()
        .find(|s| s.node == NodeId(1))
        .expect("node 1 reported");
    assert_eq!(summary.restarts, 1, "server missed the restart");
    // The post-reboot seq reset must not be misread as duplicates or
    // clock trouble.
    let stats = result.server.ingest_stats();
    assert_eq!(stats.invalid, 0, "reboot produced invalid reports");
    assert_eq!(stats.restarts, 1);
    // Reports resumed after the reboot.
    assert!(
        summary.last_report_at.expect("has reports") > SimTime::from_secs(950),
        "no reports after reboot"
    );
    // Other nodes did not restart.
    for s in result.server.node_summaries() {
        if s.node != NodeId(1) {
            assert_eq!(s.restarts, 0, "phantom restart on {}", s.node);
        }
    }
}

#[test]
fn gateway_failover_keeps_in_band_reports_flowing() {
    // The in-band collector (node 3) dies at 600 s; the plan fails the
    // gateway role over to node 1. Every client gets re-pointed, and
    // reports keep reaching the server through the new collector.
    let mut config = ScenarioConfig::line(3, 300.0, 41)
        .with_in_band_monitoring()
        // Monitoring-only network: keep app telemetry out of the way so
        // the test exercises the failover, not mesh congestion from
        // traffic still addressed at the dead gateway.
        .with_traffic(None)
        .with_duration(Duration::from_secs(1800))
        .with_uplink(UplinkModel::perfect())
        .with_transport(TransportConfig::new())
        .with_fault_plan(
            FaultPlan::new()
                .with_crash(2, SimTime::from_secs(600), None)
                .with_failover(SimTime::from_secs(600), 0),
        );
    // In-band reports are airtime-hungry; run on a 10% sub-band (EU
    // 869.4–869.65 style) so the hourly duty budget outlasts the run.
    config.duty_cycle = 0.10;
    let result = run_scenario(&config);

    // The non-gateway relay node's reports kept arriving well after
    // the old gateway died.
    let summary = result
        .server
        .node_summaries()
        .into_iter()
        .find(|s| s.node == NodeId(2))
        .expect("node 2 reported");
    let last = summary.last_report_at.expect("has reports");
    assert!(
        last > SimTime::from_secs(1700),
        "reports stopped at {last} after gateway failover"
    );
}

#[test]
fn late_retransmit_bursts_keep_the_store_sorted_and_indexed() {
    use loramon::server::query::{self, naive, Window};

    // Heavy loss + retries: reports overtake each other on the uplink,
    // so records reach the store out of capture order.
    let config = ScenarioConfig::line(3, 300.0, 73)
        .with_duration(Duration::from_secs(1800))
        .with_uplink(UplinkModel::flaky(0.30, 7))
        .with_transport(TransportConfig::new());
    let result = run_scenario(&config);

    // The retried reports really did arrive behind newer data.
    assert!(
        result.server.ingest_stats().late_reports > 0,
        "30% loss with retries produced no late arrivals"
    );

    result.server.with_store(|store| {
        // Mid-vector inserts must leave every node's records sorted by
        // capture time.
        for (id, data) in store.iter() {
            let records = data.records_in(Window::all());
            assert!(
                records
                    .windows(2)
                    .all(|w| w[0].captured_at() <= w[1].captured_at()),
                "node {id}: records out of capture order after late retransmits"
            );
        }
        // And the incremental index must still agree with the full-scan
        // oracle, on all-time and mid-run windows alike.
        let windows = [
            Window::all(),
            Window::last(Duration::from_secs(600), SimTime::from_secs(1800)),
            Window::last(Duration::from_secs(450), SimTime::from_secs(1000)),
        ];
        let bucket = Duration::from_secs(60);
        for w in windows {
            assert_eq!(
                query::packets_over_time(store, None, None, w, bucket),
                naive::packets_over_time(store, None, None, w, bucket),
            );
            assert_eq!(
                query::type_breakdown(store, None, w),
                naive::type_breakdown(store, None, w),
            );
            let idx = query::link_stats(store, w);
            let ref_ = naive::link_stats(store, w);
            assert_eq!(idx.len(), ref_.len());
            for (a, b) in idx.iter().zip(&ref_) {
                assert_eq!((a.from, a.to, a.packets), (b.from, b.to, b.packets));
                assert!((a.mean_rssi_dbm - b.mean_rssi_dbm).abs() < 1e-9);
            }
        }
    });

    // The whole pipeline stays deterministic under the burst.
    let rerun = run_scenario(&config);
    assert_eq!(
        rerun.server.ingest_stats(),
        result.server.ingest_stats(),
        "late-retransmit run not reproducible"
    );
}

#[test]
fn transport_runs_are_deterministic() {
    let run = || {
        let result = run_scenario(
            &ScenarioConfig::line(4, 400.0, 17)
                .with_duration(Duration::from_secs(900))
                .with_uplink(UplinkModel::flaky(0.15, 3))
                .with_transport(TransportConfig::new())
                .with_fault_plan(FaultPlan::random(17, 4, Duration::from_secs(900), 1)),
        );
        let stats = result.transport.expect("transport stats");
        (
            result.sim.trace().fingerprint(),
            result.reports_delivered,
            result.server.total_records(),
            stats.enqueued,
            stats.retransmissions,
            stats.acked,
        )
    };
    assert_eq!(run(), run());
}
