//! Failure-injection integration tests: dead relays, flapping nodes and
//! what the monitoring system makes of them.

use loramon::core::UplinkModel;
use loramon::scenario::{run_scenario, Failure, ScenarioConfig};
use loramon::server::{AlertKind, Window};
use loramon::sim::{NodeId, SimTime};
use std::time::Duration;

#[test]
fn dead_node_triggers_silent_alert_with_bounded_latency() {
    let fail_at = SimTime::from_secs(400);
    let config = ScenarioConfig::line(3, 500.0, 71)
        .with_duration(Duration::from_secs(1200))
        .with_uplink(UplinkModel::perfect())
        .with_failure(Failure {
            node_index: 0,
            at: fail_at,
            recover_at: None,
        });
    let silent_after = config.server.alert_rules.silent_after;
    let result = run_scenario(&config);

    let alert = result
        .alerts
        .iter()
        .find(|a| a.kind == AlertKind::NodeSilent && a.node == NodeId(1))
        .expect("silent-node alert missing");
    // Detection can't precede failure + threshold, and should not lag by
    // more than a couple of report + evaluation periods.
    let earliest = fail_at + silent_after;
    assert!(
        alert.at >= earliest,
        "alert at {} before possible",
        alert.at
    );
    let latency = alert.at.saturating_since(fail_at);
    assert!(
        latency <= silent_after + Duration::from_secs(60),
        "detection latency {latency:?} too large"
    );
}

#[test]
fn recovered_node_clears_the_alert_and_reports_again() {
    let config = ScenarioConfig::line(2, 300.0, 73)
        .with_duration(Duration::from_secs(1800))
        .with_uplink(UplinkModel::perfect())
        .with_failure(Failure {
            node_index: 0,
            at: SimTime::from_secs(300),
            recover_at: Some(SimTime::from_secs(900)),
        });
    let result = run_scenario(&config);
    // Exactly one silent episode for node 1.
    let episodes = result
        .alerts
        .iter()
        .filter(|a| a.kind == AlertKind::NodeSilent && a.node == NodeId(1))
        .count();
    assert_eq!(episodes, 1, "alerts: {:?}", result.alerts);
    // By the end the condition has cleared (node reports again).
    assert!(
        !result
            .server
            .active_alerts()
            .contains(&(NodeId(1), AlertKind::NodeSilent)),
        "alert still active after recovery"
    );
    // And the node's reports resumed: reports span the post-recovery era.
    let summary = result
        .server
        .node_summaries()
        .into_iter()
        .find(|s| s.node == NodeId(1))
        .unwrap();
    assert!(
        summary.last_report_at.unwrap() > SimTime::from_secs(950),
        "no reports after recovery"
    );
}

#[test]
fn dead_relay_reroutes_and_the_monitor_shows_the_new_path() {
    // Diamond topology: 1 -- {2, 3} -- 4. Node 2 dies mid-run; traffic
    // 1 → 4 must shift to relay 3, visibly in the forwarded counters.
    // A steep obstructed-campus path-loss model (n = 3.8) makes the
    // 886 m diagonal impossible while the 500 m legs stay solid, so the
    // mesh genuinely must forward.
    let positions = vec![
        loramon::phy::Position::new(0.0, 0.0),
        loramon::phy::Position::new(443.0, 232.0),
        loramon::phy::Position::new(443.0, -232.0),
        loramon::phy::Position::new(886.0, 0.0),
    ];
    let mut config = ScenarioConfig::new(positions, 3, 79)
        .with_duration(Duration::from_secs(2400))
        .with_uplink(UplinkModel::perfect())
        .with_failure(Failure {
            node_index: 1,
            at: SimTime::from_secs(900),
            recover_at: None,
        });
    config.path_loss = loramon::phy::LogDistance::new(30.0, 1.0, 3.8, 2.0);
    config.traffic = Some(
        loramon::mesh::TrafficPattern::to_gateway(config.gateway(), Duration::from_secs(30), 12)
            .with_start_delay(Duration::from_secs(120)),
    );
    let result = run_scenario(&config);

    // End-to-end delivery persisted past the failure.
    let e2e = result.server.end_to_end(Window::all());
    let pair = e2e
        .iter()
        .find(|e| e.origin == NodeId(1) && e.final_dst == NodeId(4))
        .expect("pair missing");
    assert!(
        pair.delivery_ratio() > 0.6,
        "delivery collapsed after relay death: {}",
        pair.delivery_ratio()
    );

    // Relay 3 forwarded (per its own status reaching the server).
    let s3 = result
        .server
        .node_summaries()
        .into_iter()
        .find(|s| s.node == NodeId(3))
        .unwrap();
    assert!(
        s3.mesh.unwrap().forwarded > 0,
        "surviving relay never forwarded"
    );
}

#[test]
fn flapping_node_produces_distinct_alert_episodes() {
    let mut config = ScenarioConfig::line(2, 300.0, 83)
        .with_duration(Duration::from_secs(3600))
        .with_uplink(UplinkModel::perfect());
    // Two failure episodes.
    config = config
        .with_failure(Failure {
            node_index: 0,
            at: SimTime::from_secs(400),
            recover_at: Some(SimTime::from_secs(900)),
        })
        .with_failure(Failure {
            node_index: 0,
            at: SimTime::from_secs(1800),
            recover_at: Some(SimTime::from_secs(2300)),
        });
    let result = run_scenario(&config);
    let episodes = result
        .alerts
        .iter()
        .filter(|a| a.kind == AlertKind::NodeSilent && a.node == NodeId(1))
        .count();
    assert_eq!(episodes, 2, "alerts: {:#?}", result.alerts);
}

#[test]
fn failed_receiver_losses_show_in_ground_truth_not_in_monitor() {
    // The monitor only knows what live nodes report; frames lost because
    // the receiver was down exist only in the simulator's omniscient
    // trace. Completeness (Out records) should remain high regardless.
    let config = ScenarioConfig::line(2, 300.0, 89)
        .with_duration(Duration::from_secs(1200))
        .with_uplink(UplinkModel::perfect())
        .with_failure(Failure {
            node_index: 1,
            at: SimTime::from_secs(300),
            recover_at: Some(SimTime::from_secs(600)),
        });
    let result = run_scenario(&config);
    use loramon::sim::LossReason;
    let receiver_down = result.sim.trace().losses(Some(LossReason::ReceiverDown));
    assert!(receiver_down > 0, "no receiver-down losses in truth");
    assert!(result.completeness() > 0.6);
}
