//! Integration test: a full simulated deployment served over the real
//! HTTP API — the complete paper pipeline including the dashboard.

use loramon::core::UplinkModel;
use loramon::scenario::{run_scenario, ScenarioConfig};
use loramon::server::HttpServer;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

fn get_json(addr: SocketAddr, path: &str) -> serde_json::Value {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(stream, "GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
    let mut out = String::new();
    stream.read_to_string(&mut out).unwrap();
    let (head, body) = out.split_once("\r\n\r\n").expect("http response");
    assert!(head.contains("200 OK"), "{head}");
    serde_json::from_str(body).expect("json body")
}

#[test]
fn scenario_data_is_fully_queryable_over_http() {
    let config = ScenarioConfig::line(4, 600.0, 61)
        .with_duration(Duration::from_secs(900))
        .with_uplink(UplinkModel::perfect());
    let result = run_scenario(&config);
    let http = HttpServer::bind(result.server.clone(), "127.0.0.1:0").unwrap();
    let addr = http.addr();

    // Nodes.
    let nodes = get_json(addr, "/api/nodes");
    assert_eq!(nodes.as_array().unwrap().len(), 4);
    for n in nodes.as_array().unwrap() {
        assert!(n["reports"].as_u64().unwrap() > 0);
        assert!(n["battery_percent"].is_number());
    }

    // Series respects filters.
    let all = get_json(addr, "/api/series?bucket_s=60");
    let ins = get_json(addr, "/api/series?bucket_s=60&direction=in");
    let total: u64 = all
        .as_array()
        .unwrap()
        .iter()
        .map(|p| p["count"].as_u64().unwrap())
        .sum();
    let in_total: u64 = ins
        .as_array()
        .unwrap()
        .iter()
        .map(|p| p["count"].as_u64().unwrap())
        .sum();
    assert!(total > in_total, "direction filter had no effect");
    assert!(in_total > 0);

    // Node filter.
    let node1 = get_json(addr, "/api/series?bucket_s=60&node=1");
    let node1_total: u64 = node1
        .as_array()
        .unwrap()
        .iter()
        .map(|p| p["count"].as_u64().unwrap())
        .sum();
    assert!(node1_total > 0 && node1_total < total);

    // Links, PDR, topology, e2e, stats.
    let links = get_json(addr, "/api/links");
    assert!(!links.as_array().unwrap().is_empty());
    let pdr = get_json(addr, "/api/pdr");
    for row in pdr.as_array().unwrap() {
        let v = row["pdr"].as_f64().unwrap();
        assert!((0.0..=1.0).contains(&v));
    }
    let topo = get_json(addr, "/api/topology");
    assert_eq!(topo["nodes"].as_array().unwrap().len(), 4);
    let e2e = get_json(addr, "/api/e2e");
    assert!(!e2e.as_array().unwrap().is_empty());
    let stats = get_json(addr, "/api/stats");
    assert_eq!(stats["nodes"], 4);
    assert!(stats["ingest"]["accepted"].as_u64().unwrap() > 0);

    http.shutdown();
}

#[test]
fn malformed_content_length_is_rejected_with_400() {
    use loramon::core::Report;
    use loramon::server::{MonitorServer, ServerConfig};
    use loramon::sim::NodeId;

    let server = MonitorServer::new(ServerConfig::default());
    let http = HttpServer::bind(server.clone(), "127.0.0.1:0").unwrap();

    // A valid report body framed by an unparsable Content-Length must
    // come back 400 — not be silently treated as an empty body.
    let report = Report {
        node: NodeId(1),
        report_seq: 0,
        generated_at_ms: 30_000,
        dropped_records: 0,
        status: None,
        records: vec![],
    };
    let body = report.encode_json();
    let mut stream = TcpStream::connect(http.addr()).unwrap();
    write!(
        stream,
        "POST /api/reports HTTP/1.1\r\nHost: t\r\nContent-Length: 12abc\r\n\r\n"
    )
    .unwrap();
    stream.write_all(&body).unwrap();
    let mut out = String::new();
    stream.read_to_string(&mut out).unwrap();
    assert!(out.contains("400 Bad Request"), "{out}");
    assert!(out.contains("Content-Length"), "{out}");
    assert_eq!(server.ingest_stats().accepted, 0, "nothing may be ingested");

    // A well-formed retry on a fresh connection still works.
    let mut stream = TcpStream::connect(http.addr()).unwrap();
    write!(
        stream,
        "POST /api/reports?at_ms=30100 HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .unwrap();
    stream.write_all(&body).unwrap();
    let mut out = String::new();
    stream.read_to_string(&mut out).unwrap();
    assert!(out.contains("200 OK"), "{out}");
    assert_eq!(server.ingest_stats().accepted, 1);

    http.shutdown();
}

#[test]
fn reports_can_be_posted_over_http_like_a_real_client() {
    use loramon::core::Report;
    use loramon::server::{MonitorServer, ServerConfig};
    use loramon::sim::NodeId;

    let server = MonitorServer::new(ServerConfig::default());
    let http = HttpServer::bind(server.clone(), "127.0.0.1:0").unwrap();
    let addr = http.addr();

    // Post 10 reports from 2 "nodes" concurrently, with one duplicate.
    let mut handles = Vec::new();
    for node in 1u16..=2 {
        handles.push(std::thread::spawn(move || {
            for seq in 0u32..5 {
                let report = Report {
                    node: NodeId(node),
                    report_seq: seq,
                    generated_at_ms: 30_000 * u64::from(seq + 1),
                    dropped_records: 0,
                    status: None,
                    records: vec![],
                };
                let body = report.encode_json();
                let mut stream = TcpStream::connect(addr).unwrap();
                write!(
                    stream,
                    "POST /api/reports?at_ms={} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
                    report.generated_at_ms + 100,
                    body.len()
                )
                .unwrap();
                stream.write_all(&body).unwrap();
                let mut out = String::new();
                stream.read_to_string(&mut out).unwrap();
                assert!(out.contains("200 OK"), "{out}");
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(server.ingest_stats().accepted, 10);
    assert_eq!(server.node_ids().len(), 2);

    // A duplicate re-post is suppressed.
    let dup = Report {
        node: NodeId(1),
        report_seq: 0,
        generated_at_ms: 30_000,
        dropped_records: 0,
        status: None,
        records: vec![],
    };
    let body = dup.encode_json();
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(
        stream,
        "POST /api/reports HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .unwrap();
    stream.write_all(&body).unwrap();
    let mut out = String::new();
    stream.read_to_string(&mut out).unwrap();
    assert!(out.contains("Duplicate"), "{out}");
    assert_eq!(server.ingest_stats().duplicates, 1);

    http.shutdown();
}
