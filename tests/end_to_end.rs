//! Integration tests spanning all crates: simulated mesh → monitoring
//! clients → uplink → server → queries, judged against simulator ground
//! truth.

use loramon::core::{MonitorConfig, UplinkModel};
use loramon::mesh::{MeshStats, TrafficPattern};
use loramon::scenario::{run_scenario, MonitoredNode, ScenarioConfig};
use loramon::server::Window;
use loramon::sim::{NodeId, SimTime};
use std::time::Duration;

#[test]
fn every_node_reports_and_all_records_belong_to_their_reporter() {
    let result =
        run_scenario(&ScenarioConfig::line(4, 500.0, 1).with_uplink(UplinkModel::perfect()));
    assert_eq!(result.server.node_ids().len(), 4);
    for summary in result.server.node_summaries() {
        assert!(summary.reports > 0, "node {} never reported", summary.node);
        assert_eq!(summary.missing_reports, 0, "perfect uplink lost reports");
    }
}

#[test]
fn monitor_reconstructs_multihop_forwarding() {
    // 4 nodes, 1.6 km apart: traffic from node 1 must relay through
    // nodes 2 and 3 to reach gateway 4. The server should see node 2/3
    // forwarding counters and an end-to-end pair 1 → 4.
    let config = ScenarioConfig::line(4, 1600.0, 3)
        .with_duration(Duration::from_secs(1800))
        .with_uplink(UplinkModel::perfect());
    let result = run_scenario(&config);

    let e2e = result.server.end_to_end(Window::all());
    let pair = e2e
        .iter()
        .find(|e| e.origin == NodeId(1) && e.final_dst == NodeId(4))
        .expect("no end-to-end pair 1→4 reconstructed");
    assert!(pair.sent >= 5, "too few messages: {}", pair.sent);
    assert!(
        pair.delivery_ratio() > 0.5,
        "delivery ratio {}",
        pair.delivery_ratio()
    );
    // Multi-hop latency must be positive (at least 2 extra airtimes).
    let lat = pair
        .mean_latency()
        .expect("delivered messages have latency");
    assert!(lat >= Duration::from_millis(50), "latency {lat:?}");

    // Relays reported forwarding in their status snapshots.
    let summaries = result.server.node_summaries();
    let relay_forwarded: u64 = summaries
        .iter()
        .filter(|s| s.node == NodeId(2) || s.node == NodeId(3))
        .filter_map(|s| s.mesh.as_ref().map(|m| m.forwarded))
        .sum();
    assert!(relay_forwarded > 0, "server never learned about forwarding");
}

#[test]
fn server_pdr_matches_ground_truth_direction() {
    let config = ScenarioConfig::line(3, 1500.0, 5)
        .with_duration(Duration::from_secs(1200))
        .with_uplink(UplinkModel::perfect());
    let result = run_scenario(&config);
    for link in result.server.link_deliveries(Window::all()) {
        let pdr = link.pdr();
        assert!(
            (0.0..=1.0).contains(&pdr),
            "pdr out of range on {} → {}: {pdr}",
            link.from,
            link.to
        );
    }
}

#[test]
fn lossy_uplink_creates_report_gaps_visible_at_server() {
    let config = ScenarioConfig::line(3, 400.0, 17)
        .with_duration(Duration::from_secs(3600))
        .with_uplink(UplinkModel::flaky(0.3, 99));
    let result = run_scenario(&config);
    let summaries = result.server.node_summaries();
    let missing: u64 = summaries.iter().map(|s| s.missing_reports).sum();
    assert!(missing > 0, "30% uplink loss produced no visible gaps");
    // And the alert engine noticed.
    assert!(
        result
            .alerts
            .iter()
            .any(|a| a.kind == loramon::server::AlertKind::ReportGap),
        "no report-gap alert fired"
    );
}

#[test]
fn uplink_outage_then_recovery_backfills_nothing_but_counts_losses() {
    let outage_uplink =
        UplinkModel::perfect().with_outage(SimTime::from_secs(300), SimTime::from_secs(900));
    let config = ScenarioConfig::line(2, 300.0, 23)
        .with_duration(Duration::from_secs(1200))
        .with_uplink(outage_uplink);
    let result = run_scenario(&config);
    assert!(result.reports_lost > 0, "outage lost nothing");
    assert!(result.reports_delivered > 0, "nothing delivered at all");
}

#[test]
fn in_band_and_out_of_band_see_the_same_network() {
    let base = ScenarioConfig::line(3, 700.0, 29)
        .with_duration(Duration::from_secs(1800))
        .with_uplink(UplinkModel::perfect());
    let oob = run_scenario(&base);
    let ib = run_scenario(&base.clone().with_in_band_monitoring());

    // Both modes must reconstruct the same set of heard links.
    let mut oob_links = oob.server.topology(Window::all()).undirected_heard();
    let mut ib_links = ib.server.topology(Window::all()).undirected_heard();
    oob_links.sort();
    ib_links.sort();
    assert_eq!(oob_links, ib_links, "modes disagree about topology");

    // In-band consumes strictly more airtime.
    assert!(
        ib.ground_truth.airtime_us > oob.ground_truth.airtime_us,
        "in-band airtime {} not larger than out-of-band {}",
        ib.ground_truth.airtime_us,
        oob.ground_truth.airtime_us
    );
}

#[test]
fn client_buffer_overflow_is_reported_not_silent() {
    // Tiny buffer + busy network + slow reporting → drops, and the
    // server must know the exact count.
    let monitor = MonitorConfig::new()
        .with_report_period(Duration::from_secs(120))
        .with_buffer_capacity(8)
        .with_max_records(8);
    let mut config = ScenarioConfig::line(4, 400.0, 31)
        .with_duration(Duration::from_secs(1800))
        .with_monitor(monitor)
        .with_uplink(UplinkModel::perfect());
    config.traffic = Some(TrafficPattern::to_gateway(
        config.gateway(),
        Duration::from_secs(15),
        16,
    ));
    let result = run_scenario(&config);
    let client_drops: u64 = result.client_stats.iter().map(|c| c.dropped).sum();
    assert!(client_drops > 0, "expected buffer overflow");
    let server_knows: u64 = result
        .server
        .node_summaries()
        .iter()
        .map(|s| s.client_dropped)
        .sum();
    assert_eq!(
        client_drops, server_knows,
        "server drop accounting disagrees with clients"
    );
}

#[test]
fn ground_truth_mesh_stats_match_server_view_on_perfect_uplink() {
    let config = ScenarioConfig::line(3, 500.0, 37)
        .with_uplink(UplinkModel::perfect())
        .with_duration(Duration::from_secs(900));
    let result = run_scenario(&config);
    // The latest status snapshot at the server lags the end-of-run stats
    // by at most one report period of activity — compare monotonic
    // lower bounds.
    for summary in result.server.node_summaries() {
        let truth: &MeshStats = &result.ground_truth.mesh_stats[&summary.node];
        let seen = summary.mesh.expect("status included");
        assert!(seen.routing_sent <= truth.routing_sent);
        assert!(seen.packets_heard <= truth.packets_heard);
        // And the server's view is not empty.
        assert!(seen.routing_sent > 0);
    }
}

#[test]
fn scenario_sim_exposes_typed_apps() {
    let result = run_scenario(&ScenarioConfig::line(2, 300.0, 41));
    for &id in &result.node_ids {
        let node: &MonitoredNode = result.sim.app_as(id).expect("typed app");
        assert_eq!(node.local_id(), id);
    }
}

#[test]
fn alert_timeline_is_chronological() {
    let config = ScenarioConfig::line(3, 400.0, 43)
        .with_duration(Duration::from_secs(1800))
        .with_uplink(UplinkModel::flaky(0.2, 7));
    let result = run_scenario(&config);
    for pair in result.alerts.windows(2) {
        assert!(pair[0].at <= pair[1].at, "alerts out of order");
    }
}

#[test]
fn rssi_histogram_covers_observed_links() {
    let result =
        run_scenario(&ScenarioConfig::line(3, 900.0, 47).with_uplink(UplinkModel::perfect()));
    let hist = result.server.rssi_histogram(None, Window::all(), 5.0);
    assert!(!hist.is_empty());
    let total: u64 = hist.iter().map(|(_, c)| c).sum();
    let links_total: u64 = result
        .server
        .link_stats(Window::all())
        .iter()
        .map(|l| l.packets)
        .sum();
    assert_eq!(total, links_total, "histogram and link stats disagree");
    // Bins are in a physically plausible range.
    for (bin, _) in hist {
        assert!((-150.0..=0.0).contains(&bin), "bin {bin} implausible");
    }
}

#[test]
fn type_breakdown_includes_routing_and_data() {
    use loramon::mesh::PacketType;
    let result =
        run_scenario(&ScenarioConfig::line(3, 500.0, 53).with_uplink(UplinkModel::perfect()));
    let breakdown = result.server.type_breakdown(None, Window::all());
    assert!(breakdown.get(&PacketType::Routing).copied().unwrap_or(0) > 0);
    assert!(breakdown.get(&PacketType::Data).copied().unwrap_or(0) > 0);
}
