//! The determinism contract, checked end to end (tier-1).
//!
//! Two halves: a golden double-run — one seeded scenario executed twice
//! must produce byte-identical trace fingerprints and accounting — and
//! property tests that the seed-derivation scheme (`rng::mix_seed` /
//! `Rng::derive`) really does make derived streams independent of draw
//! and derivation order, which is what the `cargo xtask lint`
//! determinism rules exist to protect.

use loramon::core::UplinkModel;
use loramon::scenario::{run_scenario, ScenarioConfig};
use loramon::sim::rng::{mix_seed, Rng};
use loramon::sim::{placement, TraceLevel};
use proptest::prelude::*;
use std::time::Duration;

/// Run the reference scenario once and return every observable digest,
/// including serialized query output — the indexed query engine is part
/// of the determinism contract.
fn run_digest(seed: u64) -> (u64, usize, usize, usize, String) {
    use loramon::server::Window;
    let mut config = ScenarioConfig::new(placement::line(5, 400.0), 4, seed)
        .with_duration(Duration::from_secs(400))
        .with_uplink(UplinkModel::perfect());
    config.trace_level = TraceLevel::Verbose;
    let result = run_scenario(&config);
    let series = result
        .server
        .series(None, None, Window::all(), Duration::from_secs(60));
    let links = result.server.link_stats(Window::all());
    let queries = format!(
        "{}|{}",
        serde_json::to_value(&series).expect("series serializes"),
        serde_json::to_value(&links).expect("links serialize"),
    );
    (
        result.sim.trace().fingerprint(),
        result.sim.trace().len(),
        result.reports_delivered,
        result.server.total_records(),
        queries,
    )
}

#[test]
fn double_run_produces_identical_trace_fingerprints() {
    let first = run_digest(42);
    let second = run_digest(42);
    assert_eq!(first, second, "same seed must replay byte-identically");
    assert!(first.1 > 0, "verbose trace must record events");
    // And a different seed must not collide on the same history.
    let other = run_digest(43);
    assert_ne!(first.0, other.0, "different seeds should diverge");
}

#[test]
fn fingerprint_is_order_sensitive() {
    use loramon::sim::{NodeId, SimTime, Trace, TraceEvent};
    let a = TraceEvent::NodeFailed {
        at: SimTime::from_secs(1),
        node: NodeId(1),
    };
    let b = TraceEvent::NodeRecovered {
        at: SimTime::from_secs(2),
        node: NodeId(1),
    };
    let mut ab = Trace::new(TraceLevel::Verbose);
    ab.record(a.clone());
    ab.record(b.clone());
    let mut ba = Trace::new(TraceLevel::Verbose);
    ba.record(b);
    ba.record(a);
    assert_ne!(
        ab.fingerprint(),
        ba.fingerprint(),
        "reordering events must change the fingerprint"
    );
}

proptest! {
    /// A derived stream depends only on `(seed, labels)` — not on how
    /// many draws the parent generator has already made.
    #[test]
    fn derived_streams_ignore_parent_draw_count(
        seed in any::<u64>(),
        labels in proptest::collection::vec(any::<u64>(), 1..4),
        parent_draws in 0usize..16,
    ) {
        let mut parent = Rng::new(seed);
        for _ in 0..parent_draws {
            let _ = parent.next_u64();
        }
        let mut fresh = Rng::derive(seed, &labels);
        let mut after_draws = Rng::derive(seed, &labels);
        for _ in 0..8 {
            prop_assert_eq!(fresh.next_u64(), after_draws.next_u64());
        }
    }

    /// Deriving stream A before or after stream B yields the same
    /// outputs for both — event-processing order cannot leak into
    /// random draws.
    #[test]
    fn derivation_order_is_irrelevant(
        seed in any::<u64>(),
        label_a in any::<u64>(),
        label_b in any::<u64>(),
    ) {
        prop_assume!(label_a != label_b);
        // Order 1: A first.
        let a1: Vec<u64> = Rng::derive(seed, &[label_a]).sample_u64s(4);
        let b1: Vec<u64> = Rng::derive(seed, &[label_b]).sample_u64s(4);
        // Order 2: B first.
        let b2: Vec<u64> = Rng::derive(seed, &[label_b]).sample_u64s(4);
        let a2: Vec<u64> = Rng::derive(seed, &[label_a]).sample_u64s(4);
        prop_assert_eq!(a1, a2);
        prop_assert_eq!(b1, b2);
    }

    /// `mix_seed` distinguishes word order and content, so distinct
    /// label paths get distinct streams.
    #[test]
    fn mix_seed_separates_label_paths(
        a in any::<u64>(),
        b in any::<u64>(),
    ) {
        prop_assume!(a != b);
        prop_assert_ne!(mix_seed(&[a, b]), mix_seed(&[b, a]));
        prop_assert_ne!(mix_seed(&[a]), mix_seed(&[a, b]));
    }
}

/// Small draw helper used by the property tests.
trait SampleExt {
    fn sample_u64s(&mut self, n: usize) -> Vec<u64>;
}

impl SampleExt for Rng {
    fn sample_u64s(&mut self, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.next_u64()).collect()
    }
}
