//! Randomized whole-system properties: for arbitrary small topologies,
//! seeds and durations, conservation laws must hold between the
//! simulator's ground truth, the mesh counters, the monitoring clients
//! and the server.

use loramon::core::UplinkModel;
use loramon::scenario::{run_scenario, MonitoredNode, ScenarioConfig};
use loramon::sim::TraceLevel;
use proptest::prelude::*;
use std::time::Duration;

#[derive(Debug, Clone)]
struct Params {
    nodes: usize,
    spacing_m: f64,
    seed: u64,
    duration_s: u64,
    grid: bool,
}

fn params() -> impl Strategy<Value = Params> {
    (
        2usize..6,
        200.0f64..1500.0,
        any::<u64>(),
        120u64..400,
        any::<bool>(),
    )
        .prop_map(|(nodes, spacing_m, seed, duration_s, grid)| Params {
            nodes,
            spacing_m,
            seed,
            duration_s,
            grid,
        })
}

fn build(p: &Params) -> ScenarioConfig {
    let positions = if p.grid {
        loramon::sim::placement::grid(p.nodes, p.spacing_m)
    } else {
        loramon::sim::placement::line(p.nodes, p.spacing_m)
    };
    let mut config = ScenarioConfig::new(positions, p.nodes - 1, p.seed)
        .with_duration(Duration::from_secs(p.duration_s))
        .with_uplink(UplinkModel::perfect());
    config.trace_level = TraceLevel::Verbose;
    config
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every completed transmission produces exactly one reception
    /// outcome (delivered or lost, for some reason) per other node. Up
    /// to one frame per node may still be in flight when the simulation
    /// clock stops, so the accounting may fall short by at most
    /// `nodes × (nodes − 1)` outcomes — never exceed.
    #[test]
    fn reception_outcomes_are_conserved(p in params()) {
        let result = run_scenario(&build(&p));
        let trace = result.sim.trace();
        let tx = trace.transmissions(None);
        let delivered = trace.deliveries(None);
        let lost = trace.losses(None);
        let expected = tx * (p.nodes - 1);
        let outcomes = delivered + lost;
        prop_assert!(
            outcomes <= expected,
            "more outcomes ({outcomes}) than tx × peers ({expected})"
        );
        let max_in_flight_gap = p.nodes * (p.nodes - 1);
        prop_assert!(
            expected - outcomes <= max_in_flight_gap,
            "tx {} × {} peers = {} vs {} outcomes (gap > {})",
            tx, p.nodes - 1, expected, outcomes, max_in_flight_gap
        );
    }

    /// Mesh counters agree with the radio ground truth, and the monitor
    /// captured exactly what crossed the radio.
    #[test]
    fn counters_agree_across_layers(p in params()) {
        let result = run_scenario(&build(&p));
        for &id in &result.node_ids {
            let radio = result.sim.stats(id);
            let node: &MonitoredNode = result.sim.app_as(id).unwrap();
            let mesh = node.stats();
            // Every demodulated frame decoded (all traffic is ours).
            prop_assert_eq!(mesh.decode_errors, 0);
            prop_assert_eq!(mesh.packets_heard, radio.frames_received);
            // Out events fired per confirmed transmission; the node may
            // have at most one frame still in flight at the cutoff.
            let sent = mesh.routing_sent + mesh.data_sent + mesh.acks_sent;
            prop_assert!(
                radio.frames_sent - sent <= 1,
                "radio sent {} but mesh classified {}",
                radio.frames_sent,
                sent
            );
            // The monitor saw both directions, nothing more.
            let client = node.observer();
            prop_assert_eq!(
                client.records_captured() + client.records_filtered(),
                mesh.packets_heard + sent
            );
        }
    }

    /// With a perfect uplink, the server accounts for every record the
    /// clients produced: stored + still-buffered + client-dropped.
    #[test]
    fn server_accounting_balances(p in params()) {
        let result = run_scenario(&build(&p));
        prop_assert_eq!(result.reports_lost, 0);
        let summaries = result.server.node_summaries();
        for stat in &result.client_stats {
            let node: &MonitoredNode = result.sim.app_as(stat.node).unwrap();
            let buffered = node.observer().buffered() as u64;
            let summary = summaries
                .iter()
                .find(|s| s.node == stat.node)
                .expect("node missing at server");
            prop_assert_eq!(summary.missing_reports, 0);
            prop_assert_eq!(summary.client_dropped, stat.dropped);
            prop_assert_eq!(
                summary.records + buffered + stat.dropped,
                stat.captured,
                "node {}: {} stored + {} buffered + {} dropped ≠ {} captured",
                stat.node, summary.records, buffered, stat.dropped, stat.captured
            );
        }
    }

    /// Duty-cycle compliance holds for every node in every random run.
    #[test]
    fn duty_cycle_is_never_violated(p in params()) {
        let result = run_scenario(&build(&p));
        // 1% budget over a 1-hour sliding window; runs are shorter than
        // an hour so lifetime airtime must stay within one hour's budget.
        for &id in &result.node_ids {
            let airtime_s = result.sim.stats(id).airtime_us as f64 / 1e6;
            prop_assert!(
                airtime_s <= 36.5,
                "node {id} airtime {airtime_s}s exceeds the hourly budget"
            );
        }
    }

    /// Determinism: the same parameters replay to the same totals.
    #[test]
    fn runs_replay_identically(p in params()) {
        let a = run_scenario(&build(&p));
        let b = run_scenario(&build(&p));
        prop_assert_eq!(a.server.total_records(), b.server.total_records());
        prop_assert_eq!(a.reports_delivered, b.reports_delivered);
        prop_assert_eq!(
            a.ground_truth.transmissions,
            b.ground_truth.transmissions
        );
        prop_assert_eq!(a.sim.trace().len(), b.sim.trace().len());
    }
}
