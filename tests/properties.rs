//! Property-based tests on wire formats, buffers, routing and the
//! duty-cycle regulator.

use bytes::Bytes;
use loramon::core::{DropPolicy, NodeStatus, PacketRecord, RecordBuffer, Report, ReportedRoute};
use loramon::mesh::{
    Direction, MeshStats, Packet, PacketType, RouteEntry, RoutingTable, INFINITY_METRIC,
    MAX_SEGMENT_PAYLOAD,
};
use loramon::phy::airtime::time_on_air;
use loramon::phy::{Bandwidth, CodingRate, DutyCycleRegulator, RadioConfig, SpreadingFactor};
use loramon::sim::{NodeId, SimTime};
use proptest::prelude::*;
use std::time::Duration;

// ── strategies ────────────────────────────────────────────────────────

fn node_id() -> impl Strategy<Value = NodeId> {
    (1u16..0xFFFF).prop_map(NodeId)
}

fn direction() -> impl Strategy<Value = Direction> {
    prop_oneof![Just(Direction::In), Just(Direction::Out)]
}

fn packet_type() -> impl Strategy<Value = PacketType> {
    prop_oneof![
        Just(PacketType::Routing),
        Just(PacketType::Data),
        Just(PacketType::Ack),
    ]
}

prop_compose! {
    fn packet_record()(
        seq in any::<u64>(),
        timestamp_ms in 0u64..u64::MAX / 2,
        dir in direction(),
        node in node_id(),
        counterpart in node_id(),
        ptype in packet_type(),
        origin in node_id(),
        final_dst in node_id(),
        packet_id in any::<u16>(),
        ttl in any::<u8>(),
        size_bytes in 0u32..100_000,
        rssi in proptest::option::of(-140.0f64..0.0),
    ) -> PacketRecord {
        // f32 wire precision: quantize so binary roundtrip is exact.
        let q = |v: f64| f64::from(v as f32);
        PacketRecord {
            seq, timestamp_ms, direction: dir, node, counterpart, ptype,
            origin, final_dst, packet_id, ttl, size_bytes,
            rssi_dbm: rssi.map(q),
            snr_db: rssi.map(|r| q(r / 4.0)),
        }
    }
}

prop_compose! {
    fn reported_route()(
        address in node_id(),
        next_hop in node_id(),
        metric in 1u8..16,
        rssi in -140.0f64..0.0,
    ) -> ReportedRoute {
        ReportedRoute {
            address, next_hop, metric,
            rssi_dbm: f64::from(rssi as f32),
            snr_db: f64::from((rssi / 4.0) as f32),
        }
    }
}

prop_compose! {
    fn node_status()(
        node in node_id(),
        uptime_ms in any::<u64>(),
        battery in 0u8..=100,
        queue_len in 0u32..1000,
        duty in 0.0f64..=1.0,
        routes in proptest::collection::vec(reported_route(), 0..10),
        heard in any::<u64>(),
    ) -> NodeStatus {
        NodeStatus {
            node, uptime_ms, battery_percent: battery, queue_len,
            duty_cycle_utilization: duty,
            mesh: MeshStats { packets_heard: heard, ..MeshStats::default() },
            routes,
        }
    }
}

prop_compose! {
    fn report()(
        node in node_id(),
        report_seq in any::<u32>(),
        generated_at_ms in any::<u64>(),
        dropped in any::<u64>(),
        status in proptest::option::of(node_status()),
        records in proptest::collection::vec(packet_record(), 0..20),
    ) -> Report {
        Report {
            node, report_seq, generated_at_ms,
            dropped_records: dropped, status, records,
        }
    }
}

fn route_entry() -> impl Strategy<Value = RouteEntry> {
    (node_id(), 0u8..20, node_id()).prop_map(|(address, metric, via)| RouteEntry {
        address,
        metric,
        via,
    })
}

fn mesh_packet() -> impl Strategy<Value = Packet> {
    prop_oneof![
        (
            node_id(),
            any::<u16>(),
            proptest::collection::vec(route_entry(), 0..45)
        )
            .prop_map(|(src, id, entries)| Packet::routing(src, id, entries)),
        (
            node_id(),
            node_id(),
            node_id(),
            node_id(),
            any::<u16>(),
            any::<u8>(),
            0u8..4,
            proptest::collection::vec(any::<u8>(), 0..MAX_SEGMENT_PAYLOAD),
            any::<bool>(),
        )
            .prop_map(
                |(ld, ls, origin, fd, id, ttl, seg, payload, reliable)| Packet::data(
                    ld,
                    ls,
                    origin,
                    fd,
                    id,
                    ttl,
                    seg,
                    4,
                    if reliable {
                        loramon::mesh::FLAG_ACK_REQUEST
                    } else {
                        0
                    },
                    Bytes::from(payload),
                )
            ),
        (
            node_id(),
            node_id(),
            node_id(),
            node_id(),
            any::<u16>(),
            any::<u8>(),
            node_id(),
            any::<u16>(),
        )
            .prop_map(|(ld, ls, origin, fd, id, ttl, ao, ai)| Packet::ack(
                ld, ls, origin, fd, id, ttl, ao, ai
            )),
    ]
}

fn radio_config() -> impl Strategy<Value = RadioConfig> {
    (
        prop_oneof![
            Just(SpreadingFactor::Sf7),
            Just(SpreadingFactor::Sf8),
            Just(SpreadingFactor::Sf9),
            Just(SpreadingFactor::Sf10),
            Just(SpreadingFactor::Sf11),
            Just(SpreadingFactor::Sf12),
        ],
        prop_oneof![
            Just(Bandwidth::Khz125),
            Just(Bandwidth::Khz250),
            Just(Bandwidth::Khz500),
        ],
        prop_oneof![
            Just(CodingRate::Cr4_5),
            Just(CodingRate::Cr4_6),
            Just(CodingRate::Cr4_7),
            Just(CodingRate::Cr4_8),
        ],
    )
        .prop_map(|(sf, bw, cr)| RadioConfig::new(sf, bw, cr))
}

// ── properties ────────────────────────────────────────────────────────

proptest! {
    #[test]
    fn mesh_packet_roundtrips(packet in mesh_packet()) {
        let encoded = packet.encode();
        prop_assert_eq!(encoded.len(), packet.encoded_len());
        prop_assert!(encoded.len() <= loramon::mesh::MAX_PACKET_LEN
            || matches!(packet.body, loramon::mesh::Body::Routing(_)));
        let decoded = Packet::decode(&encoded).unwrap();
        prop_assert_eq!(decoded, packet);
    }

    #[test]
    fn mesh_packet_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = Packet::decode(&bytes); // must not panic
    }

    #[test]
    fn report_json_roundtrips(r in report()) {
        let json = r.encode_json();
        let back = Report::decode_json(&json).unwrap();
        prop_assert_eq!(back, r);
    }

    #[test]
    fn report_binary_roundtrips(r in report()) {
        let bin = r.encode_binary();
        let back = Report::decode_binary(&bin).unwrap();
        prop_assert_eq!(back, r);
    }

    #[test]
    fn report_binary_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..600)) {
        let _ = Report::decode_binary(&bytes);
    }

    #[test]
    fn report_binary_never_larger_than_json(r in report()) {
        prop_assert!(r.encode_binary().len() <= r.encode_json().len());
    }

    #[test]
    fn buffer_never_exceeds_capacity(
        capacity in 1usize..64,
        oldest in any::<bool>(),
        pushes in proptest::collection::vec(any::<u32>(), 0..200),
    ) {
        let policy = if oldest { DropPolicy::Oldest } else { DropPolicy::Newest };
        let mut buf = RecordBuffer::new(capacity, policy);
        for &p in &pushes {
            buf.push(p);
            prop_assert!(buf.len() <= capacity);
        }
        let kept = buf.len() as u64;
        prop_assert_eq!(kept + buf.dropped(), pushes.len() as u64);
        // Drain returns items in FIFO order and empties the buffer.
        let drained = buf.drain(usize::MAX);
        prop_assert_eq!(drained.len() as u64, kept);
        prop_assert!(buf.is_empty());
        // Oldest policy keeps a suffix, Newest keeps a prefix.
        if pushes.len() >= capacity {
            if oldest {
                prop_assert_eq!(&drained[..], &pushes[pushes.len() - capacity..]);
            } else {
                prop_assert_eq!(&drained[..], &pushes[..capacity]);
            }
        }
    }

    #[test]
    fn routing_table_invariants(
        broadcasts in proptest::collection::vec(
            (2u16..30, proptest::collection::vec(route_entry(), 0..8), 0u64..1000),
            0..40,
        ),
    ) {
        let local = NodeId(1);
        let mut rt = RoutingTable::new();
        for (sender, entries, at_s) in broadcasts {
            rt.apply_broadcast(
                local,
                NodeId(sender),
                &entries,
                -90.0,
                5.0,
                SimTime::from_secs(at_s),
            );
            for route in rt.routes() {
                // Never a route to ourselves, never at/above infinity.
                prop_assert_ne!(route.address, local);
                prop_assert!(route.metric < INFINITY_METRIC);
                prop_assert!(route.metric >= 1);
                // Next hop is a known direct neighbor (metric-1 route).
                let hop = rt.route_to(route.next_hop);
                prop_assert!(hop.is_some(), "next hop {} unknown", route.next_hop);
            }
        }
    }

    #[test]
    fn duty_cycle_never_exceeds_budget(
        duty_percent in 1u32..=100,
        attempts in proptest::collection::vec((0u64..3_000_000, 1u64..200_000), 1..60),
    ) {
        let duty = f64::from(duty_percent) / 100.0;
        let window = Duration::from_secs(10);
        let mut reg = DutyCycleRegulator::with_window(duty, window);
        let mut clock = 0u64;
        for (gap, airtime) in attempts {
            clock += gap;
            if reg.may_transmit(clock, airtime) {
                reg.record_transmission(clock, airtime);
                // Invariant: consumption at the end of this transmission
                // never exceeds the budget.
                prop_assert!(
                    reg.consumed_us(clock + airtime) <= reg.budget_us(),
                    "budget exceeded at t={clock}"
                );
            }
        }
    }

    #[test]
    fn next_allowed_at_is_sound(
        preload in proptest::collection::vec((0u64..5_000_000, 1u64..80_000), 0..20),
        airtime in 1u64..90_000,
        now_extra in 0u64..2_000_000,
    ) {
        let mut reg = DutyCycleRegulator::with_window(0.01, Duration::from_secs(10));
        let mut clock = 0u64;
        for (gap, at) in preload {
            clock += gap;
            if reg.may_transmit(clock, at) {
                reg.record_transmission(clock, at);
            }
        }
        let now = clock + now_extra;
        if let Some(t) = reg.next_allowed_at(now, airtime) {
            prop_assert!(t >= now);
            prop_assert!(reg.may_transmit(t, airtime), "not allowed at returned t");
        } else {
            prop_assert!(airtime > reg.budget_us());
        }
    }

    #[test]
    fn airtime_monotonic_and_positive(cfg in radio_config(), len in 0usize..=255) {
        let toa = time_on_air(&cfg, len);
        prop_assert!(toa > Duration::ZERO);
        if len < 255 {
            prop_assert!(time_on_air(&cfg, len + 1) >= toa);
        }
        // LoRa frames are slow but bounded: even SF12/CR4_8 at 255
        // bytes stays under ~15 s.
        prop_assert!(toa < Duration::from_secs(15));
        prop_assert!(toa > Duration::from_micros(500));
    }

    #[test]
    fn sensitivity_consistent_with_noise_floor(cfg in radio_config()) {
        let sens = loramon::phy::sensitivity_dbm(cfg.sf(), cfg.bw());
        let floor = loramon::phy::noise_floor_dbm(cfg.bw().hz());
        // Sensitivity is below the noise floor (LoRa decodes under noise)
        // by exactly the SNR floor.
        prop_assert!(sens < floor);
        prop_assert!((floor - sens - (-loramon::phy::snr_floor_db(cfg.sf()))).abs() < 1e-9);
    }
}
