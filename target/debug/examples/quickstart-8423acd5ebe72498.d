/root/repo/target/debug/examples/quickstart-8423acd5ebe72498.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-8423acd5ebe72498: examples/quickstart.rs

examples/quickstart.rs:
