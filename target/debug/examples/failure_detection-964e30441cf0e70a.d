/root/repo/target/debug/examples/failure_detection-964e30441cf0e70a.d: examples/failure_detection.rs Cargo.toml

/root/repo/target/debug/examples/libfailure_detection-964e30441cf0e70a.rmeta: examples/failure_detection.rs Cargo.toml

examples/failure_detection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
