/root/repo/target/debug/examples/mobile_node-4ebad6dfe926316f.d: examples/mobile_node.rs Cargo.toml

/root/repo/target/debug/examples/libmobile_node-4ebad6dfe926316f.rmeta: examples/mobile_node.rs Cargo.toml

examples/mobile_node.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
