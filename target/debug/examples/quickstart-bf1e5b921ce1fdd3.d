/root/repo/target/debug/examples/quickstart-bf1e5b921ce1fdd3.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-bf1e5b921ce1fdd3.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
