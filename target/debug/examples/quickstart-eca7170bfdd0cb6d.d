/root/repo/target/debug/examples/quickstart-eca7170bfdd0cb6d.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-eca7170bfdd0cb6d.rmeta: examples/quickstart.rs

examples/quickstart.rs:
