/root/repo/target/debug/examples/overhead_study-ef08934612dd63ce.d: examples/overhead_study.rs Cargo.toml

/root/repo/target/debug/examples/liboverhead_study-ef08934612dd63ce.rmeta: examples/overhead_study.rs Cargo.toml

examples/overhead_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
