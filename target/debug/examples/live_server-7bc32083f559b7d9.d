/root/repo/target/debug/examples/live_server-7bc32083f559b7d9.d: examples/live_server.rs

/root/repo/target/debug/examples/liblive_server-7bc32083f559b7d9.rmeta: examples/live_server.rs

examples/live_server.rs:
