/root/repo/target/debug/examples/failover_dbg-e57f214d4b757dbf.d: examples/failover_dbg.rs

/root/repo/target/debug/examples/failover_dbg-e57f214d4b757dbf: examples/failover_dbg.rs

examples/failover_dbg.rs:
