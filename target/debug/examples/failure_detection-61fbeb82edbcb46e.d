/root/repo/target/debug/examples/failure_detection-61fbeb82edbcb46e.d: examples/failure_detection.rs

/root/repo/target/debug/examples/failure_detection-61fbeb82edbcb46e: examples/failure_detection.rs

examples/failure_detection.rs:
