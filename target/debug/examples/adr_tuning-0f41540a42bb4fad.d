/root/repo/target/debug/examples/adr_tuning-0f41540a42bb4fad.d: examples/adr_tuning.rs

/root/repo/target/debug/examples/adr_tuning-0f41540a42bb4fad: examples/adr_tuning.rs

examples/adr_tuning.rs:
