/root/repo/target/debug/examples/adr_tuning-884e7e318069ca2d.d: examples/adr_tuning.rs

/root/repo/target/debug/examples/libadr_tuning-884e7e318069ca2d.rmeta: examples/adr_tuning.rs

examples/adr_tuning.rs:
