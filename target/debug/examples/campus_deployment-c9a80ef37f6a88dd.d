/root/repo/target/debug/examples/campus_deployment-c9a80ef37f6a88dd.d: examples/campus_deployment.rs Cargo.toml

/root/repo/target/debug/examples/libcampus_deployment-c9a80ef37f6a88dd.rmeta: examples/campus_deployment.rs Cargo.toml

examples/campus_deployment.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
