/root/repo/target/debug/examples/live_server-4bdbb872c50889d5.d: examples/live_server.rs Cargo.toml

/root/repo/target/debug/examples/liblive_server-4bdbb872c50889d5.rmeta: examples/live_server.rs Cargo.toml

examples/live_server.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
