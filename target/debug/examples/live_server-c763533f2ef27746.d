/root/repo/target/debug/examples/live_server-c763533f2ef27746.d: examples/live_server.rs

/root/repo/target/debug/examples/live_server-c763533f2ef27746: examples/live_server.rs

examples/live_server.rs:
