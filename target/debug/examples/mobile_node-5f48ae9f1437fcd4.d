/root/repo/target/debug/examples/mobile_node-5f48ae9f1437fcd4.d: examples/mobile_node.rs

/root/repo/target/debug/examples/mobile_node-5f48ae9f1437fcd4: examples/mobile_node.rs

examples/mobile_node.rs:
