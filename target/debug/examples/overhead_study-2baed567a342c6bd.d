/root/repo/target/debug/examples/overhead_study-2baed567a342c6bd.d: examples/overhead_study.rs

/root/repo/target/debug/examples/liboverhead_study-2baed567a342c6bd.rmeta: examples/overhead_study.rs

examples/overhead_study.rs:
