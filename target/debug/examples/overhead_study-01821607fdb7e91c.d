/root/repo/target/debug/examples/overhead_study-01821607fdb7e91c.d: examples/overhead_study.rs

/root/repo/target/debug/examples/overhead_study-01821607fdb7e91c: examples/overhead_study.rs

examples/overhead_study.rs:
