/root/repo/target/debug/examples/campus_deployment-f4cdb12260727e77.d: examples/campus_deployment.rs

/root/repo/target/debug/examples/campus_deployment-f4cdb12260727e77: examples/campus_deployment.rs

examples/campus_deployment.rs:
