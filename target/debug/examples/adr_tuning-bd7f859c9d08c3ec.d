/root/repo/target/debug/examples/adr_tuning-bd7f859c9d08c3ec.d: examples/adr_tuning.rs Cargo.toml

/root/repo/target/debug/examples/libadr_tuning-bd7f859c9d08c3ec.rmeta: examples/adr_tuning.rs Cargo.toml

examples/adr_tuning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
