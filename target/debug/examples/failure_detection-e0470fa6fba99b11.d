/root/repo/target/debug/examples/failure_detection-e0470fa6fba99b11.d: examples/failure_detection.rs

/root/repo/target/debug/examples/libfailure_detection-e0470fa6fba99b11.rmeta: examples/failure_detection.rs

examples/failure_detection.rs:
