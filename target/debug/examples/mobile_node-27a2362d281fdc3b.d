/root/repo/target/debug/examples/mobile_node-27a2362d281fdc3b.d: examples/mobile_node.rs

/root/repo/target/debug/examples/libmobile_node-27a2362d281fdc3b.rmeta: examples/mobile_node.rs

examples/mobile_node.rs:
