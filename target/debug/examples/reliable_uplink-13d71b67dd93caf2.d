/root/repo/target/debug/examples/reliable_uplink-13d71b67dd93caf2.d: examples/reliable_uplink.rs

/root/repo/target/debug/examples/reliable_uplink-13d71b67dd93caf2: examples/reliable_uplink.rs

examples/reliable_uplink.rs:
