/root/repo/target/debug/examples/campus_deployment-03919e723287a332.d: examples/campus_deployment.rs

/root/repo/target/debug/examples/libcampus_deployment-03919e723287a332.rmeta: examples/campus_deployment.rs

examples/campus_deployment.rs:
