/root/repo/target/debug/deps/loramon-093f14a332d6c852.d: src/lib.rs src/cli.rs src/scenario.rs Cargo.toml

/root/repo/target/debug/deps/libloramon-093f14a332d6c852.rmeta: src/lib.rs src/cli.rs src/scenario.rs Cargo.toml

src/lib.rs:
src/cli.rs:
src/scenario.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
