/root/repo/target/debug/deps/loramon_dashboard-ac745ef8f51567f8.d: crates/dashboard/src/lib.rs crates/dashboard/src/ascii.rs crates/dashboard/src/html.rs

/root/repo/target/debug/deps/libloramon_dashboard-ac745ef8f51567f8.rmeta: crates/dashboard/src/lib.rs crates/dashboard/src/ascii.rs crates/dashboard/src/html.rs

crates/dashboard/src/lib.rs:
crates/dashboard/src/ascii.rs:
crates/dashboard/src/html.rs:
