/root/repo/target/debug/deps/xtask-b127ecb05c8b97ce.d: crates/xtask/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libxtask-b127ecb05c8b97ce.rmeta: crates/xtask/src/main.rs Cargo.toml

crates/xtask/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
