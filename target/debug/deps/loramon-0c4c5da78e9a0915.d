/root/repo/target/debug/deps/loramon-0c4c5da78e9a0915.d: src/lib.rs src/cli.rs src/scenario.rs

/root/repo/target/debug/deps/libloramon-0c4c5da78e9a0915.rmeta: src/lib.rs src/cli.rs src/scenario.rs

src/lib.rs:
src/cli.rs:
src/scenario.rs:
