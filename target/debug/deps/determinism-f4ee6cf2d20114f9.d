/root/repo/target/debug/deps/determinism-f4ee6cf2d20114f9.d: tests/determinism.rs

/root/repo/target/debug/deps/libdeterminism-f4ee6cf2d20114f9.rmeta: tests/determinism.rs

tests/determinism.rs:
