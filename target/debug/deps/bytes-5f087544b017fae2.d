/root/repo/target/debug/deps/bytes-5f087544b017fae2.d: vendor/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-5f087544b017fae2.rmeta: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:
