/root/repo/target/debug/deps/loramon_core-26ae48805da082d3.d: crates/core/src/lib.rs crates/core/src/buffer.rs crates/core/src/command.rs crates/core/src/client.rs crates/core/src/record.rs crates/core/src/report.rs crates/core/src/status.rs crates/core/src/uplink.rs Cargo.toml

/root/repo/target/debug/deps/libloramon_core-26ae48805da082d3.rmeta: crates/core/src/lib.rs crates/core/src/buffer.rs crates/core/src/command.rs crates/core/src/client.rs crates/core/src/record.rs crates/core/src/report.rs crates/core/src/status.rs crates/core/src/uplink.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/buffer.rs:
crates/core/src/command.rs:
crates/core/src/client.rs:
crates/core/src/record.rs:
crates/core/src/report.rs:
crates/core/src/status.rs:
crates/core/src/uplink.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
