/root/repo/target/debug/deps/system_properties-4c579de641b00ec4.d: tests/system_properties.rs Cargo.toml

/root/repo/target/debug/deps/libsystem_properties-4c579de641b00ec4.rmeta: tests/system_properties.rs Cargo.toml

tests/system_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
