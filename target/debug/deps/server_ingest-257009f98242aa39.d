/root/repo/target/debug/deps/server_ingest-257009f98242aa39.d: crates/bench/benches/server_ingest.rs Cargo.toml

/root/repo/target/debug/deps/libserver_ingest-257009f98242aa39.rmeta: crates/bench/benches/server_ingest.rs Cargo.toml

crates/bench/benches/server_ingest.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
