/root/repo/target/debug/deps/serde-0917c0c492a9fc0d.d: vendor/serde/src/lib.rs vendor/serde/src/json.rs vendor/serde/src/impls.rs

/root/repo/target/debug/deps/serde-0917c0c492a9fc0d: vendor/serde/src/lib.rs vendor/serde/src/json.rs vendor/serde/src/impls.rs

vendor/serde/src/lib.rs:
vendor/serde/src/json.rs:
vendor/serde/src/impls.rs:
