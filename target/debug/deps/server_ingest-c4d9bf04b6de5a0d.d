/root/repo/target/debug/deps/server_ingest-c4d9bf04b6de5a0d.d: crates/bench/benches/server_ingest.rs

/root/repo/target/debug/deps/libserver_ingest-c4d9bf04b6de5a0d.rmeta: crates/bench/benches/server_ingest.rs

crates/bench/benches/server_ingest.rs:
