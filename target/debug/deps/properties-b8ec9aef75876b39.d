/root/repo/target/debug/deps/properties-b8ec9aef75876b39.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-b8ec9aef75876b39.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
