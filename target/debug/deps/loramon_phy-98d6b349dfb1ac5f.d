/root/repo/target/debug/deps/loramon_phy-98d6b349dfb1ac5f.d: crates/phy/src/lib.rs crates/phy/src/adr.rs crates/phy/src/airtime.rs crates/phy/src/collision.rs crates/phy/src/dutycycle.rs crates/phy/src/energy.rs crates/phy/src/params.rs crates/phy/src/propagation.rs crates/phy/src/region.rs crates/phy/src/sensitivity.rs Cargo.toml

/root/repo/target/debug/deps/libloramon_phy-98d6b349dfb1ac5f.rmeta: crates/phy/src/lib.rs crates/phy/src/adr.rs crates/phy/src/airtime.rs crates/phy/src/collision.rs crates/phy/src/dutycycle.rs crates/phy/src/energy.rs crates/phy/src/params.rs crates/phy/src/propagation.rs crates/phy/src/region.rs crates/phy/src/sensitivity.rs Cargo.toml

crates/phy/src/lib.rs:
crates/phy/src/adr.rs:
crates/phy/src/airtime.rs:
crates/phy/src/collision.rs:
crates/phy/src/dutycycle.rs:
crates/phy/src/energy.rs:
crates/phy/src/params.rs:
crates/phy/src/propagation.rs:
crates/phy/src/region.rs:
crates/phy/src/sensitivity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
