/root/repo/target/debug/deps/loramon-add2667533184992.d: src/lib.rs src/cli.rs src/scenario.rs

/root/repo/target/debug/deps/libloramon-add2667533184992.rlib: src/lib.rs src/cli.rs src/scenario.rs

/root/repo/target/debug/deps/libloramon-add2667533184992.rmeta: src/lib.rs src/cli.rs src/scenario.rs

src/lib.rs:
src/cli.rs:
src/scenario.rs:
