/root/repo/target/debug/deps/xtask-11b925495139ad23.d: crates/xtask/src/lib.rs crates/xtask/src/determinism.rs crates/xtask/src/lint/mod.rs crates/xtask/src/lint/rules.rs crates/xtask/src/lint/scanner.rs Cargo.toml

/root/repo/target/debug/deps/libxtask-11b925495139ad23.rmeta: crates/xtask/src/lib.rs crates/xtask/src/determinism.rs crates/xtask/src/lint/mod.rs crates/xtask/src/lint/rules.rs crates/xtask/src/lint/scanner.rs Cargo.toml

crates/xtask/src/lib.rs:
crates/xtask/src/determinism.rs:
crates/xtask/src/lint/mod.rs:
crates/xtask/src/lint/rules.rs:
crates/xtask/src/lint/scanner.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/xtask
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
