/root/repo/target/debug/deps/loramon_dashboard-f804c73a06a0a639.d: crates/dashboard/src/lib.rs crates/dashboard/src/ascii.rs crates/dashboard/src/html.rs

/root/repo/target/debug/deps/loramon_dashboard-f804c73a06a0a639: crates/dashboard/src/lib.rs crates/dashboard/src/ascii.rs crates/dashboard/src/html.rs

crates/dashboard/src/lib.rs:
crates/dashboard/src/ascii.rs:
crates/dashboard/src/html.rs:
