/root/repo/target/debug/deps/loramon_dashboard-2ad2ceb0b70ad5e9.d: crates/dashboard/src/lib.rs crates/dashboard/src/ascii.rs crates/dashboard/src/html.rs Cargo.toml

/root/repo/target/debug/deps/libloramon_dashboard-2ad2ceb0b70ad5e9.rmeta: crates/dashboard/src/lib.rs crates/dashboard/src/ascii.rs crates/dashboard/src/html.rs Cargo.toml

crates/dashboard/src/lib.rs:
crates/dashboard/src/ascii.rs:
crates/dashboard/src/html.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
