/root/repo/target/debug/deps/loramon-9a82a3f9de26dfbf.d: src/bin/loramon.rs

/root/repo/target/debug/deps/libloramon-9a82a3f9de26dfbf.rmeta: src/bin/loramon.rs

src/bin/loramon.rs:
