/root/repo/target/debug/deps/extensions-a36bb3b27ace7352.d: tests/extensions.rs

/root/repo/target/debug/deps/extensions-a36bb3b27ace7352: tests/extensions.rs

tests/extensions.rs:
