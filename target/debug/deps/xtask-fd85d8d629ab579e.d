/root/repo/target/debug/deps/xtask-fd85d8d629ab579e.d: crates/xtask/src/main.rs

/root/repo/target/debug/deps/xtask-fd85d8d629ab579e: crates/xtask/src/main.rs

crates/xtask/src/main.rs:
