/root/repo/target/debug/deps/monitoring_overhead-7e498bbe7208184e.d: crates/bench/benches/monitoring_overhead.rs

/root/repo/target/debug/deps/libmonitoring_overhead-7e498bbe7208184e.rmeta: crates/bench/benches/monitoring_overhead.rs

crates/bench/benches/monitoring_overhead.rs:
