/root/repo/target/debug/deps/loramon_mesh-3714f9825fd525be.d: crates/mesh/src/lib.rs crates/mesh/src/config.rs crates/mesh/src/node.rs crates/mesh/src/observer.rs crates/mesh/src/packet.rs crates/mesh/src/routing.rs

/root/repo/target/debug/deps/libloramon_mesh-3714f9825fd525be.rlib: crates/mesh/src/lib.rs crates/mesh/src/config.rs crates/mesh/src/node.rs crates/mesh/src/observer.rs crates/mesh/src/packet.rs crates/mesh/src/routing.rs

/root/repo/target/debug/deps/libloramon_mesh-3714f9825fd525be.rmeta: crates/mesh/src/lib.rs crates/mesh/src/config.rs crates/mesh/src/node.rs crates/mesh/src/observer.rs crates/mesh/src/packet.rs crates/mesh/src/routing.rs

crates/mesh/src/lib.rs:
crates/mesh/src/config.rs:
crates/mesh/src/node.rs:
crates/mesh/src/observer.rs:
crates/mesh/src/packet.rs:
crates/mesh/src/routing.rs:
