/root/repo/target/debug/deps/pdr_sweep-47c7293f3d0ef10c.d: crates/bench/benches/pdr_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libpdr_sweep-47c7293f3d0ef10c.rmeta: crates/bench/benches/pdr_sweep.rs Cargo.toml

crates/bench/benches/pdr_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
