/root/repo/target/debug/deps/xtask-ae1052e79844183b.d: crates/xtask/src/lib.rs crates/xtask/src/determinism.rs crates/xtask/src/lint/mod.rs crates/xtask/src/lint/rules.rs crates/xtask/src/lint/scanner.rs

/root/repo/target/debug/deps/libxtask-ae1052e79844183b.rmeta: crates/xtask/src/lib.rs crates/xtask/src/determinism.rs crates/xtask/src/lint/mod.rs crates/xtask/src/lint/rules.rs crates/xtask/src/lint/scanner.rs

crates/xtask/src/lib.rs:
crates/xtask/src/determinism.rs:
crates/xtask/src/lint/mod.rs:
crates/xtask/src/lint/rules.rs:
crates/xtask/src/lint/scanner.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/xtask
