/root/repo/target/debug/deps/determinism-e25a1bc63b271396.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-e25a1bc63b271396: tests/determinism.rs

tests/determinism.rs:
