/root/repo/target/debug/deps/loramon_dashboard-00b18477c9cea65d.d: crates/dashboard/src/lib.rs crates/dashboard/src/ascii.rs crates/dashboard/src/html.rs

/root/repo/target/debug/deps/libloramon_dashboard-00b18477c9cea65d.rlib: crates/dashboard/src/lib.rs crates/dashboard/src/ascii.rs crates/dashboard/src/html.rs

/root/repo/target/debug/deps/libloramon_dashboard-00b18477c9cea65d.rmeta: crates/dashboard/src/lib.rs crates/dashboard/src/ascii.rs crates/dashboard/src/html.rs

crates/dashboard/src/lib.rs:
crates/dashboard/src/ascii.rs:
crates/dashboard/src/html.rs:
