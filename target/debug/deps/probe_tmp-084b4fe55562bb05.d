/root/repo/target/debug/deps/probe_tmp-084b4fe55562bb05.d: crates/xtask/tests/probe_tmp.rs

/root/repo/target/debug/deps/probe_tmp-084b4fe55562bb05: crates/xtask/tests/probe_tmp.rs

crates/xtask/tests/probe_tmp.rs:
