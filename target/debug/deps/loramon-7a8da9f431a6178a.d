/root/repo/target/debug/deps/loramon-7a8da9f431a6178a.d: src/bin/loramon.rs

/root/repo/target/debug/deps/libloramon-7a8da9f431a6178a.rmeta: src/bin/loramon.rs

src/bin/loramon.rs:
