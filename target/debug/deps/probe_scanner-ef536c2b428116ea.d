/root/repo/target/debug/deps/probe_scanner-ef536c2b428116ea.d: crates/xtask/tests/probe_scanner.rs

/root/repo/target/debug/deps/probe_scanner-ef536c2b428116ea: crates/xtask/tests/probe_scanner.rs

crates/xtask/tests/probe_scanner.rs:
