/root/repo/target/debug/deps/loramon_core-767badb8e3760e16.d: crates/core/src/lib.rs crates/core/src/buffer.rs crates/core/src/client.rs crates/core/src/command.rs crates/core/src/record.rs crates/core/src/report.rs crates/core/src/status.rs crates/core/src/transport.rs crates/core/src/uplink.rs

/root/repo/target/debug/deps/loramon_core-767badb8e3760e16: crates/core/src/lib.rs crates/core/src/buffer.rs crates/core/src/client.rs crates/core/src/command.rs crates/core/src/record.rs crates/core/src/report.rs crates/core/src/status.rs crates/core/src/transport.rs crates/core/src/uplink.rs

crates/core/src/lib.rs:
crates/core/src/buffer.rs:
crates/core/src/client.rs:
crates/core/src/command.rs:
crates/core/src/record.rs:
crates/core/src/report.rs:
crates/core/src/status.rs:
crates/core/src/transport.rs:
crates/core/src/uplink.rs:
