/root/repo/target/debug/deps/properties-05c9f052b98aea21.d: tests/properties.rs

/root/repo/target/debug/deps/properties-05c9f052b98aea21: tests/properties.rs

tests/properties.rs:
