/root/repo/target/debug/deps/loramon_dashboard-50f595a182db6304.d: crates/dashboard/src/lib.rs crates/dashboard/src/ascii.rs crates/dashboard/src/html.rs Cargo.toml

/root/repo/target/debug/deps/libloramon_dashboard-50f595a182db6304.rmeta: crates/dashboard/src/lib.rs crates/dashboard/src/ascii.rs crates/dashboard/src/html.rs Cargo.toml

crates/dashboard/src/lib.rs:
crates/dashboard/src/ascii.rs:
crates/dashboard/src/html.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
