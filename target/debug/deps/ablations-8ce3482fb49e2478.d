/root/repo/target/debug/deps/ablations-8ce3482fb49e2478.d: crates/bench/benches/ablations.rs

/root/repo/target/debug/deps/libablations-8ce3482fb49e2478.rmeta: crates/bench/benches/ablations.rs

crates/bench/benches/ablations.rs:
