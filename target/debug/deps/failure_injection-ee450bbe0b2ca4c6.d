/root/repo/target/debug/deps/failure_injection-ee450bbe0b2ca4c6.d: tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-ee450bbe0b2ca4c6: tests/failure_injection.rs

tests/failure_injection.rs:
