/root/repo/target/debug/deps/failure_injection-7f31dc0911a949e1.d: tests/failure_injection.rs

/root/repo/target/debug/deps/libfailure_injection-7f31dc0911a949e1.rmeta: tests/failure_injection.rs

tests/failure_injection.rs:
