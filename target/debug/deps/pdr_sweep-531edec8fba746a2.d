/root/repo/target/debug/deps/pdr_sweep-531edec8fba746a2.d: crates/bench/benches/pdr_sweep.rs

/root/repo/target/debug/deps/libpdr_sweep-531edec8fba746a2.rmeta: crates/bench/benches/pdr_sweep.rs

crates/bench/benches/pdr_sweep.rs:
