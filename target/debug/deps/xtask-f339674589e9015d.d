/root/repo/target/debug/deps/xtask-f339674589e9015d.d: crates/xtask/src/main.rs

/root/repo/target/debug/deps/libxtask-f339674589e9015d.rmeta: crates/xtask/src/main.rs

crates/xtask/src/main.rs:
