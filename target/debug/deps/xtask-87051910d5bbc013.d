/root/repo/target/debug/deps/xtask-87051910d5bbc013.d: crates/xtask/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libxtask-87051910d5bbc013.rmeta: crates/xtask/src/main.rs Cargo.toml

crates/xtask/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
