/root/repo/target/debug/deps/loramon-158d5f39f3375252.d: src/bin/loramon.rs Cargo.toml

/root/repo/target/debug/deps/libloramon-158d5f39f3375252.rmeta: src/bin/loramon.rs Cargo.toml

src/bin/loramon.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
