/root/repo/target/debug/deps/end_to_end-54464e7f69c0c920.d: tests/end_to_end.rs

/root/repo/target/debug/deps/libend_to_end-54464e7f69c0c920.rmeta: tests/end_to_end.rs

tests/end_to_end.rs:
