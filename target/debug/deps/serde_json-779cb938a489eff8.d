/root/repo/target/debug/deps/serde_json-779cb938a489eff8.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-779cb938a489eff8.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
