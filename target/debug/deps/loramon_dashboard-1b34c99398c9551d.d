/root/repo/target/debug/deps/loramon_dashboard-1b34c99398c9551d.d: crates/dashboard/src/lib.rs crates/dashboard/src/ascii.rs crates/dashboard/src/html.rs

/root/repo/target/debug/deps/libloramon_dashboard-1b34c99398c9551d.rmeta: crates/dashboard/src/lib.rs crates/dashboard/src/ascii.rs crates/dashboard/src/html.rs

crates/dashboard/src/lib.rs:
crates/dashboard/src/ascii.rs:
crates/dashboard/src/html.rs:
