/root/repo/target/debug/deps/loramon_bench-be3c14af0263b11f.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libloramon_bench-be3c14af0263b11f.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
