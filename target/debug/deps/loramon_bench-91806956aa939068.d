/root/repo/target/debug/deps/loramon_bench-91806956aa939068.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libloramon_bench-91806956aa939068.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
