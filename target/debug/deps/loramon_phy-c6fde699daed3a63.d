/root/repo/target/debug/deps/loramon_phy-c6fde699daed3a63.d: crates/phy/src/lib.rs crates/phy/src/adr.rs crates/phy/src/airtime.rs crates/phy/src/collision.rs crates/phy/src/dutycycle.rs crates/phy/src/energy.rs crates/phy/src/params.rs crates/phy/src/propagation.rs crates/phy/src/region.rs crates/phy/src/sensitivity.rs

/root/repo/target/debug/deps/libloramon_phy-c6fde699daed3a63.rlib: crates/phy/src/lib.rs crates/phy/src/adr.rs crates/phy/src/airtime.rs crates/phy/src/collision.rs crates/phy/src/dutycycle.rs crates/phy/src/energy.rs crates/phy/src/params.rs crates/phy/src/propagation.rs crates/phy/src/region.rs crates/phy/src/sensitivity.rs

/root/repo/target/debug/deps/libloramon_phy-c6fde699daed3a63.rmeta: crates/phy/src/lib.rs crates/phy/src/adr.rs crates/phy/src/airtime.rs crates/phy/src/collision.rs crates/phy/src/dutycycle.rs crates/phy/src/energy.rs crates/phy/src/params.rs crates/phy/src/propagation.rs crates/phy/src/region.rs crates/phy/src/sensitivity.rs

crates/phy/src/lib.rs:
crates/phy/src/adr.rs:
crates/phy/src/airtime.rs:
crates/phy/src/collision.rs:
crates/phy/src/dutycycle.rs:
crates/phy/src/energy.rs:
crates/phy/src/params.rs:
crates/phy/src/propagation.rs:
crates/phy/src/region.rs:
crates/phy/src/sensitivity.rs:
