/root/repo/target/debug/deps/system_properties-2993355b783faf43.d: tests/system_properties.rs

/root/repo/target/debug/deps/system_properties-2993355b783faf43: tests/system_properties.rs

tests/system_properties.rs:
