/root/repo/target/debug/deps/xtask-d4807bfd0bedb07e.d: crates/xtask/src/lib.rs crates/xtask/src/analysis/mod.rs crates/xtask/src/analysis/items.rs crates/xtask/src/analysis/json.rs crates/xtask/src/analysis/layering.rs crates/xtask/src/analysis/lex.rs crates/xtask/src/analysis/panic_surface.rs crates/xtask/src/analysis/schema.rs crates/xtask/src/chaos.rs crates/xtask/src/determinism.rs crates/xtask/src/lint/mod.rs crates/xtask/src/lint/rules.rs crates/xtask/src/lint/scanner.rs

/root/repo/target/debug/deps/xtask-d4807bfd0bedb07e: crates/xtask/src/lib.rs crates/xtask/src/analysis/mod.rs crates/xtask/src/analysis/items.rs crates/xtask/src/analysis/json.rs crates/xtask/src/analysis/layering.rs crates/xtask/src/analysis/lex.rs crates/xtask/src/analysis/panic_surface.rs crates/xtask/src/analysis/schema.rs crates/xtask/src/chaos.rs crates/xtask/src/determinism.rs crates/xtask/src/lint/mod.rs crates/xtask/src/lint/rules.rs crates/xtask/src/lint/scanner.rs

crates/xtask/src/lib.rs:
crates/xtask/src/analysis/mod.rs:
crates/xtask/src/analysis/items.rs:
crates/xtask/src/analysis/json.rs:
crates/xtask/src/analysis/layering.rs:
crates/xtask/src/analysis/lex.rs:
crates/xtask/src/analysis/panic_surface.rs:
crates/xtask/src/analysis/schema.rs:
crates/xtask/src/chaos.rs:
crates/xtask/src/determinism.rs:
crates/xtask/src/lint/mod.rs:
crates/xtask/src/lint/rules.rs:
crates/xtask/src/lint/scanner.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/xtask
