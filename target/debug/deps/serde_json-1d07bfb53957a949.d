/root/repo/target/debug/deps/serde_json-1d07bfb53957a949.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/serde_json-1d07bfb53957a949: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
