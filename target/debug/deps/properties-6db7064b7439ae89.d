/root/repo/target/debug/deps/properties-6db7064b7439ae89.d: tests/properties.rs

/root/repo/target/debug/deps/libproperties-6db7064b7439ae89.rmeta: tests/properties.rs

tests/properties.rs:
