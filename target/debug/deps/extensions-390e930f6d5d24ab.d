/root/repo/target/debug/deps/extensions-390e930f6d5d24ab.d: tests/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-390e930f6d5d24ab.rmeta: tests/extensions.rs Cargo.toml

tests/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
