/root/repo/target/debug/deps/loramon_sim-87bf8c47fce82346.d: crates/sim/src/lib.rs crates/sim/src/app.rs crates/sim/src/apps.rs crates/sim/src/channel.rs crates/sim/src/fault.rs crates/sim/src/node.rs crates/sim/src/placement.rs crates/sim/src/rng.rs crates/sim/src/sim.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/libloramon_sim-87bf8c47fce82346.rlib: crates/sim/src/lib.rs crates/sim/src/app.rs crates/sim/src/apps.rs crates/sim/src/channel.rs crates/sim/src/fault.rs crates/sim/src/node.rs crates/sim/src/placement.rs crates/sim/src/rng.rs crates/sim/src/sim.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/libloramon_sim-87bf8c47fce82346.rmeta: crates/sim/src/lib.rs crates/sim/src/app.rs crates/sim/src/apps.rs crates/sim/src/channel.rs crates/sim/src/fault.rs crates/sim/src/node.rs crates/sim/src/placement.rs crates/sim/src/rng.rs crates/sim/src/sim.rs crates/sim/src/time.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/app.rs:
crates/sim/src/apps.rs:
crates/sim/src/channel.rs:
crates/sim/src/fault.rs:
crates/sim/src/node.rs:
crates/sim/src/placement.rs:
crates/sim/src/rng.rs:
crates/sim/src/sim.rs:
crates/sim/src/time.rs:
crates/sim/src/trace.rs:
