/root/repo/target/debug/deps/failure_injection-d7330fa44c21a165.d: tests/failure_injection.rs Cargo.toml

/root/repo/target/debug/deps/libfailure_injection-d7330fa44c21a165.rmeta: tests/failure_injection.rs Cargo.toml

tests/failure_injection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
