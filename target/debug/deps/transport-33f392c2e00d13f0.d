/root/repo/target/debug/deps/transport-33f392c2e00d13f0.d: tests/transport.rs

/root/repo/target/debug/deps/transport-33f392c2e00d13f0: tests/transport.rs

tests/transport.rs:
