/root/repo/target/debug/deps/loramon_sim-eb0279b5905dcac2.d: crates/sim/src/lib.rs crates/sim/src/app.rs crates/sim/src/apps.rs crates/sim/src/channel.rs crates/sim/src/fault.rs crates/sim/src/node.rs crates/sim/src/placement.rs crates/sim/src/rng.rs crates/sim/src/sim.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/loramon_sim-eb0279b5905dcac2: crates/sim/src/lib.rs crates/sim/src/app.rs crates/sim/src/apps.rs crates/sim/src/channel.rs crates/sim/src/fault.rs crates/sim/src/node.rs crates/sim/src/placement.rs crates/sim/src/rng.rs crates/sim/src/sim.rs crates/sim/src/time.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/app.rs:
crates/sim/src/apps.rs:
crates/sim/src/channel.rs:
crates/sim/src/fault.rs:
crates/sim/src/node.rs:
crates/sim/src/placement.rs:
crates/sim/src/rng.rs:
crates/sim/src/sim.rs:
crates/sim/src/time.rs:
crates/sim/src/trace.rs:
