/root/repo/target/debug/deps/scalability-eaae71e45b82876f.d: crates/bench/benches/scalability.rs

/root/repo/target/debug/deps/libscalability-eaae71e45b82876f.rmeta: crates/bench/benches/scalability.rs

crates/bench/benches/scalability.rs:
