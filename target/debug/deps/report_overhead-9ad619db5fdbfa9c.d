/root/repo/target/debug/deps/report_overhead-9ad619db5fdbfa9c.d: crates/bench/benches/report_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libreport_overhead-9ad619db5fdbfa9c.rmeta: crates/bench/benches/report_overhead.rs Cargo.toml

crates/bench/benches/report_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
