/root/repo/target/debug/deps/monitoring_overhead-5bbea75b149445e3.d: crates/bench/benches/monitoring_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libmonitoring_overhead-5bbea75b149445e3.rmeta: crates/bench/benches/monitoring_overhead.rs Cargo.toml

crates/bench/benches/monitoring_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
