/root/repo/target/debug/deps/end_to_end-25cdc3760780f694.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-25cdc3760780f694: tests/end_to_end.rs

tests/end_to_end.rs:
