/root/repo/target/debug/deps/loramon_server-0e62cdb34eab31a1.d: crates/server/src/lib.rs crates/server/src/alert.rs crates/server/src/archive.rs crates/server/src/clock.rs crates/server/src/epoch.rs crates/server/src/health.rs crates/server/src/http.rs crates/server/src/ingest.rs crates/server/src/matcher.rs crates/server/src/query.rs crates/server/src/rollup.rs crates/server/src/server.rs crates/server/src/store.rs crates/server/src/topology.rs

/root/repo/target/debug/deps/libloramon_server-0e62cdb34eab31a1.rlib: crates/server/src/lib.rs crates/server/src/alert.rs crates/server/src/archive.rs crates/server/src/clock.rs crates/server/src/epoch.rs crates/server/src/health.rs crates/server/src/http.rs crates/server/src/ingest.rs crates/server/src/matcher.rs crates/server/src/query.rs crates/server/src/rollup.rs crates/server/src/server.rs crates/server/src/store.rs crates/server/src/topology.rs

/root/repo/target/debug/deps/libloramon_server-0e62cdb34eab31a1.rmeta: crates/server/src/lib.rs crates/server/src/alert.rs crates/server/src/archive.rs crates/server/src/clock.rs crates/server/src/epoch.rs crates/server/src/health.rs crates/server/src/http.rs crates/server/src/ingest.rs crates/server/src/matcher.rs crates/server/src/query.rs crates/server/src/rollup.rs crates/server/src/server.rs crates/server/src/store.rs crates/server/src/topology.rs

crates/server/src/lib.rs:
crates/server/src/alert.rs:
crates/server/src/archive.rs:
crates/server/src/clock.rs:
crates/server/src/epoch.rs:
crates/server/src/health.rs:
crates/server/src/http.rs:
crates/server/src/ingest.rs:
crates/server/src/matcher.rs:
crates/server/src/query.rs:
crates/server/src/rollup.rs:
crates/server/src/server.rs:
crates/server/src/store.rs:
crates/server/src/topology.rs:
