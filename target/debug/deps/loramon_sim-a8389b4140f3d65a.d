/root/repo/target/debug/deps/loramon_sim-a8389b4140f3d65a.d: crates/sim/src/lib.rs crates/sim/src/app.rs crates/sim/src/apps.rs crates/sim/src/channel.rs crates/sim/src/node.rs crates/sim/src/placement.rs crates/sim/src/rng.rs crates/sim/src/sim.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/libloramon_sim-a8389b4140f3d65a.rmeta: crates/sim/src/lib.rs crates/sim/src/app.rs crates/sim/src/apps.rs crates/sim/src/channel.rs crates/sim/src/node.rs crates/sim/src/placement.rs crates/sim/src/rng.rs crates/sim/src/sim.rs crates/sim/src/time.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/app.rs:
crates/sim/src/apps.rs:
crates/sim/src/channel.rs:
crates/sim/src/node.rs:
crates/sim/src/placement.rs:
crates/sim/src/rng.rs:
crates/sim/src/sim.rs:
crates/sim/src/time.rs:
crates/sim/src/trace.rs:
