/root/repo/target/debug/deps/loramon_mesh-e859b293de99a26c.d: crates/mesh/src/lib.rs crates/mesh/src/config.rs crates/mesh/src/node.rs crates/mesh/src/observer.rs crates/mesh/src/packet.rs crates/mesh/src/routing.rs

/root/repo/target/debug/deps/loramon_mesh-e859b293de99a26c: crates/mesh/src/lib.rs crates/mesh/src/config.rs crates/mesh/src/node.rs crates/mesh/src/observer.rs crates/mesh/src/packet.rs crates/mesh/src/routing.rs

crates/mesh/src/lib.rs:
crates/mesh/src/config.rs:
crates/mesh/src/node.rs:
crates/mesh/src/observer.rs:
crates/mesh/src/packet.rs:
crates/mesh/src/routing.rs:
