/root/repo/target/debug/deps/http_api-26cc9c09e77c6335.d: tests/http_api.rs Cargo.toml

/root/repo/target/debug/deps/libhttp_api-26cc9c09e77c6335.rmeta: tests/http_api.rs Cargo.toml

tests/http_api.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
