/root/repo/target/debug/deps/extensions-def962486788972e.d: tests/extensions.rs

/root/repo/target/debug/deps/libextensions-def962486788972e.rmeta: tests/extensions.rs

tests/extensions.rs:
