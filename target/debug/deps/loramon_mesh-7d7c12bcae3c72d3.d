/root/repo/target/debug/deps/loramon_mesh-7d7c12bcae3c72d3.d: crates/mesh/src/lib.rs crates/mesh/src/config.rs crates/mesh/src/node.rs crates/mesh/src/observer.rs crates/mesh/src/packet.rs crates/mesh/src/routing.rs Cargo.toml

/root/repo/target/debug/deps/libloramon_mesh-7d7c12bcae3c72d3.rmeta: crates/mesh/src/lib.rs crates/mesh/src/config.rs crates/mesh/src/node.rs crates/mesh/src/observer.rs crates/mesh/src/packet.rs crates/mesh/src/routing.rs Cargo.toml

crates/mesh/src/lib.rs:
crates/mesh/src/config.rs:
crates/mesh/src/node.rs:
crates/mesh/src/observer.rs:
crates/mesh/src/packet.rs:
crates/mesh/src/routing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
