/root/repo/target/debug/deps/loramon-d028de417c5ee927.d: src/bin/loramon.rs

/root/repo/target/debug/deps/loramon-d028de417c5ee927: src/bin/loramon.rs

src/bin/loramon.rs:
