/root/repo/target/debug/deps/lint_rules-954e96f4add6f702.d: crates/xtask/tests/lint_rules.rs

/root/repo/target/debug/deps/liblint_rules-954e96f4add6f702.rmeta: crates/xtask/tests/lint_rules.rs

crates/xtask/tests/lint_rules.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/xtask
