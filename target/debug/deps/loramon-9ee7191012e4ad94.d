/root/repo/target/debug/deps/loramon-9ee7191012e4ad94.d: src/lib.rs src/cli.rs src/scenario.rs

/root/repo/target/debug/deps/libloramon-9ee7191012e4ad94.rmeta: src/lib.rs src/cli.rs src/scenario.rs

src/lib.rs:
src/cli.rs:
src/scenario.rs:
