/root/repo/target/debug/deps/loramon_mesh-9454a168f1ebb9fb.d: crates/mesh/src/lib.rs crates/mesh/src/config.rs crates/mesh/src/node.rs crates/mesh/src/observer.rs crates/mesh/src/packet.rs crates/mesh/src/routing.rs

/root/repo/target/debug/deps/libloramon_mesh-9454a168f1ebb9fb.rmeta: crates/mesh/src/lib.rs crates/mesh/src/config.rs crates/mesh/src/node.rs crates/mesh/src/observer.rs crates/mesh/src/packet.rs crates/mesh/src/routing.rs

crates/mesh/src/lib.rs:
crates/mesh/src/config.rs:
crates/mesh/src/node.rs:
crates/mesh/src/observer.rs:
crates/mesh/src/packet.rs:
crates/mesh/src/routing.rs:
