/root/repo/target/debug/deps/loramon-c6482c450c2fd15e.d: src/lib.rs src/cli.rs src/scenario.rs

/root/repo/target/debug/deps/loramon-c6482c450c2fd15e: src/lib.rs src/cli.rs src/scenario.rs

src/lib.rs:
src/cli.rs:
src/scenario.rs:
