/root/repo/target/debug/deps/loramon_bench-dffe217c506f04ca.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/loramon_bench-dffe217c506f04ca: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
