/root/repo/target/debug/deps/ablations-5fa620b148350bdd.d: crates/bench/benches/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-5fa620b148350bdd.rmeta: crates/bench/benches/ablations.rs Cargo.toml

crates/bench/benches/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
