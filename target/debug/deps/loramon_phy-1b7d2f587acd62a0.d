/root/repo/target/debug/deps/loramon_phy-1b7d2f587acd62a0.d: crates/phy/src/lib.rs crates/phy/src/adr.rs crates/phy/src/airtime.rs crates/phy/src/collision.rs crates/phy/src/dutycycle.rs crates/phy/src/energy.rs crates/phy/src/params.rs crates/phy/src/propagation.rs crates/phy/src/region.rs crates/phy/src/sensitivity.rs

/root/repo/target/debug/deps/loramon_phy-1b7d2f587acd62a0: crates/phy/src/lib.rs crates/phy/src/adr.rs crates/phy/src/airtime.rs crates/phy/src/collision.rs crates/phy/src/dutycycle.rs crates/phy/src/energy.rs crates/phy/src/params.rs crates/phy/src/propagation.rs crates/phy/src/region.rs crates/phy/src/sensitivity.rs

crates/phy/src/lib.rs:
crates/phy/src/adr.rs:
crates/phy/src/airtime.rs:
crates/phy/src/collision.rs:
crates/phy/src/dutycycle.rs:
crates/phy/src/energy.rs:
crates/phy/src/params.rs:
crates/phy/src/propagation.rs:
crates/phy/src/region.rs:
crates/phy/src/sensitivity.rs:
