/root/repo/target/debug/deps/loramon-e8bc16489c2eeaf9.d: src/bin/loramon.rs Cargo.toml

/root/repo/target/debug/deps/libloramon-e8bc16489c2eeaf9.rmeta: src/bin/loramon.rs Cargo.toml

src/bin/loramon.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
