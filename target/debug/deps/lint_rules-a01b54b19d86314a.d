/root/repo/target/debug/deps/lint_rules-a01b54b19d86314a.d: crates/xtask/tests/lint_rules.rs

/root/repo/target/debug/deps/lint_rules-a01b54b19d86314a: crates/xtask/tests/lint_rules.rs

crates/xtask/tests/lint_rules.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/xtask
