/root/repo/target/debug/deps/system_properties-148c450a0311cca3.d: tests/system_properties.rs

/root/repo/target/debug/deps/libsystem_properties-148c450a0311cca3.rmeta: tests/system_properties.rs

tests/system_properties.rs:
