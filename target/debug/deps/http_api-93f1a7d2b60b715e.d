/root/repo/target/debug/deps/http_api-93f1a7d2b60b715e.d: tests/http_api.rs

/root/repo/target/debug/deps/libhttp_api-93f1a7d2b60b715e.rmeta: tests/http_api.rs

tests/http_api.rs:
