/root/repo/target/debug/deps/micro-cdf34975abb3790d.d: crates/bench/benches/micro.rs Cargo.toml

/root/repo/target/debug/deps/libmicro-cdf34975abb3790d.rmeta: crates/bench/benches/micro.rs Cargo.toml

crates/bench/benches/micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
