/root/repo/target/debug/deps/xtask-d9d839fadedcbc45.d: crates/xtask/src/main.rs

/root/repo/target/debug/deps/xtask-d9d839fadedcbc45: crates/xtask/src/main.rs

crates/xtask/src/main.rs:
