/root/repo/target/debug/deps/loramon_bench-6329a91a78566c45.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libloramon_bench-6329a91a78566c45.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libloramon_bench-6329a91a78566c45.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
