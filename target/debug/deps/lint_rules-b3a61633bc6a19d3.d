/root/repo/target/debug/deps/lint_rules-b3a61633bc6a19d3.d: crates/xtask/tests/lint_rules.rs Cargo.toml

/root/repo/target/debug/deps/liblint_rules-b3a61633bc6a19d3.rmeta: crates/xtask/tests/lint_rules.rs Cargo.toml

crates/xtask/tests/lint_rules.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/xtask
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
