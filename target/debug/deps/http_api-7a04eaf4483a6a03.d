/root/repo/target/debug/deps/http_api-7a04eaf4483a6a03.d: tests/http_api.rs

/root/repo/target/debug/deps/http_api-7a04eaf4483a6a03: tests/http_api.rs

tests/http_api.rs:
