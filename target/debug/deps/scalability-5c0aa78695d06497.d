/root/repo/target/debug/deps/scalability-5c0aa78695d06497.d: crates/bench/benches/scalability.rs Cargo.toml

/root/repo/target/debug/deps/libscalability-5c0aa78695d06497.rmeta: crates/bench/benches/scalability.rs Cargo.toml

crates/bench/benches/scalability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
