/root/repo/target/debug/deps/loramon-6334772f4e08482b.d: src/lib.rs src/cli.rs src/scenario.rs Cargo.toml

/root/repo/target/debug/deps/libloramon-6334772f4e08482b.rmeta: src/lib.rs src/cli.rs src/scenario.rs Cargo.toml

src/lib.rs:
src/cli.rs:
src/scenario.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
