/root/repo/target/debug/deps/loramon-0c1cc0924774d416.d: src/bin/loramon.rs

/root/repo/target/debug/deps/loramon-0c1cc0924774d416: src/bin/loramon.rs

src/bin/loramon.rs:
