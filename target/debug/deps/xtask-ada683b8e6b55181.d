/root/repo/target/debug/deps/xtask-ada683b8e6b55181.d: crates/xtask/src/lib.rs crates/xtask/src/determinism.rs crates/xtask/src/lint/mod.rs crates/xtask/src/lint/rules.rs crates/xtask/src/lint/scanner.rs Cargo.toml

/root/repo/target/debug/deps/libxtask-ada683b8e6b55181.rmeta: crates/xtask/src/lib.rs crates/xtask/src/determinism.rs crates/xtask/src/lint/mod.rs crates/xtask/src/lint/rules.rs crates/xtask/src/lint/scanner.rs Cargo.toml

crates/xtask/src/lib.rs:
crates/xtask/src/determinism.rs:
crates/xtask/src/lint/mod.rs:
crates/xtask/src/lint/rules.rs:
crates/xtask/src/lint/scanner.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/xtask
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
