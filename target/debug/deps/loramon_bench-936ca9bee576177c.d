/root/repo/target/debug/deps/loramon_bench-936ca9bee576177c.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libloramon_bench-936ca9bee576177c.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
