/root/repo/target/debug/deps/determinism-37454f5717ba6ae1.d: tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-37454f5717ba6ae1.rmeta: tests/determinism.rs Cargo.toml

tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
