/root/repo/target/debug/deps/loramon_sim-c92323b4b46ce320.d: crates/sim/src/lib.rs crates/sim/src/app.rs crates/sim/src/apps.rs crates/sim/src/channel.rs crates/sim/src/node.rs crates/sim/src/placement.rs crates/sim/src/rng.rs crates/sim/src/sim.rs crates/sim/src/time.rs crates/sim/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libloramon_sim-c92323b4b46ce320.rmeta: crates/sim/src/lib.rs crates/sim/src/app.rs crates/sim/src/apps.rs crates/sim/src/channel.rs crates/sim/src/node.rs crates/sim/src/placement.rs crates/sim/src/rng.rs crates/sim/src/sim.rs crates/sim/src/time.rs crates/sim/src/trace.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/app.rs:
crates/sim/src/apps.rs:
crates/sim/src/channel.rs:
crates/sim/src/node.rs:
crates/sim/src/placement.rs:
crates/sim/src/rng.rs:
crates/sim/src/sim.rs:
crates/sim/src/time.rs:
crates/sim/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
