/root/repo/target/debug/deps/xtask-a5bf1100676c12f7.d: crates/xtask/src/main.rs

/root/repo/target/debug/deps/libxtask-a5bf1100676c12f7.rmeta: crates/xtask/src/main.rs

crates/xtask/src/main.rs:
