/root/repo/target/debug/deps/micro-d83dfa493b9d508e.d: crates/bench/benches/micro.rs

/root/repo/target/debug/deps/libmicro-d83dfa493b9d508e.rmeta: crates/bench/benches/micro.rs

crates/bench/benches/micro.rs:
