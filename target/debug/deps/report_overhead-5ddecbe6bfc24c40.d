/root/repo/target/debug/deps/report_overhead-5ddecbe6bfc24c40.d: crates/bench/benches/report_overhead.rs

/root/repo/target/debug/deps/libreport_overhead-5ddecbe6bfc24c40.rmeta: crates/bench/benches/report_overhead.rs

crates/bench/benches/report_overhead.rs:
