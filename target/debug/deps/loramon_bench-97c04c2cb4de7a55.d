/root/repo/target/debug/deps/loramon_bench-97c04c2cb4de7a55.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libloramon_bench-97c04c2cb4de7a55.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
