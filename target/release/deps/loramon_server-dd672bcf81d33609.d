/root/repo/target/release/deps/loramon_server-dd672bcf81d33609.d: crates/server/src/lib.rs crates/server/src/alert.rs crates/server/src/archive.rs crates/server/src/clock.rs crates/server/src/epoch.rs crates/server/src/health.rs crates/server/src/http.rs crates/server/src/ingest.rs crates/server/src/matcher.rs crates/server/src/query.rs crates/server/src/rollup.rs crates/server/src/server.rs crates/server/src/store.rs crates/server/src/topology.rs

/root/repo/target/release/deps/libloramon_server-dd672bcf81d33609.rlib: crates/server/src/lib.rs crates/server/src/alert.rs crates/server/src/archive.rs crates/server/src/clock.rs crates/server/src/epoch.rs crates/server/src/health.rs crates/server/src/http.rs crates/server/src/ingest.rs crates/server/src/matcher.rs crates/server/src/query.rs crates/server/src/rollup.rs crates/server/src/server.rs crates/server/src/store.rs crates/server/src/topology.rs

/root/repo/target/release/deps/libloramon_server-dd672bcf81d33609.rmeta: crates/server/src/lib.rs crates/server/src/alert.rs crates/server/src/archive.rs crates/server/src/clock.rs crates/server/src/epoch.rs crates/server/src/health.rs crates/server/src/http.rs crates/server/src/ingest.rs crates/server/src/matcher.rs crates/server/src/query.rs crates/server/src/rollup.rs crates/server/src/server.rs crates/server/src/store.rs crates/server/src/topology.rs

crates/server/src/lib.rs:
crates/server/src/alert.rs:
crates/server/src/archive.rs:
crates/server/src/clock.rs:
crates/server/src/epoch.rs:
crates/server/src/health.rs:
crates/server/src/http.rs:
crates/server/src/ingest.rs:
crates/server/src/matcher.rs:
crates/server/src/query.rs:
crates/server/src/rollup.rs:
crates/server/src/server.rs:
crates/server/src/store.rs:
crates/server/src/topology.rs:
