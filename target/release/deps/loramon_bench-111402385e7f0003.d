/root/repo/target/release/deps/loramon_bench-111402385e7f0003.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libloramon_bench-111402385e7f0003.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libloramon_bench-111402385e7f0003.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
