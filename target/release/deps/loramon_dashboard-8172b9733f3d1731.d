/root/repo/target/release/deps/loramon_dashboard-8172b9733f3d1731.d: crates/dashboard/src/lib.rs crates/dashboard/src/ascii.rs crates/dashboard/src/html.rs

/root/repo/target/release/deps/libloramon_dashboard-8172b9733f3d1731.rlib: crates/dashboard/src/lib.rs crates/dashboard/src/ascii.rs crates/dashboard/src/html.rs

/root/repo/target/release/deps/libloramon_dashboard-8172b9733f3d1731.rmeta: crates/dashboard/src/lib.rs crates/dashboard/src/ascii.rs crates/dashboard/src/html.rs

crates/dashboard/src/lib.rs:
crates/dashboard/src/ascii.rs:
crates/dashboard/src/html.rs:
