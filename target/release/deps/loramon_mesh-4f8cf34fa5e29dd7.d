/root/repo/target/release/deps/loramon_mesh-4f8cf34fa5e29dd7.d: crates/mesh/src/lib.rs crates/mesh/src/config.rs crates/mesh/src/node.rs crates/mesh/src/observer.rs crates/mesh/src/packet.rs crates/mesh/src/routing.rs

/root/repo/target/release/deps/libloramon_mesh-4f8cf34fa5e29dd7.rlib: crates/mesh/src/lib.rs crates/mesh/src/config.rs crates/mesh/src/node.rs crates/mesh/src/observer.rs crates/mesh/src/packet.rs crates/mesh/src/routing.rs

/root/repo/target/release/deps/libloramon_mesh-4f8cf34fa5e29dd7.rmeta: crates/mesh/src/lib.rs crates/mesh/src/config.rs crates/mesh/src/node.rs crates/mesh/src/observer.rs crates/mesh/src/packet.rs crates/mesh/src/routing.rs

crates/mesh/src/lib.rs:
crates/mesh/src/config.rs:
crates/mesh/src/node.rs:
crates/mesh/src/observer.rs:
crates/mesh/src/packet.rs:
crates/mesh/src/routing.rs:
