/root/repo/target/release/deps/loramon-43229bd7a6cfbf5e.d: src/lib.rs src/cli.rs src/scenario.rs

/root/repo/target/release/deps/libloramon-43229bd7a6cfbf5e.rlib: src/lib.rs src/cli.rs src/scenario.rs

/root/repo/target/release/deps/libloramon-43229bd7a6cfbf5e.rmeta: src/lib.rs src/cli.rs src/scenario.rs

src/lib.rs:
src/cli.rs:
src/scenario.rs:
