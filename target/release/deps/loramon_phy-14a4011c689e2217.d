/root/repo/target/release/deps/loramon_phy-14a4011c689e2217.d: crates/phy/src/lib.rs crates/phy/src/adr.rs crates/phy/src/airtime.rs crates/phy/src/collision.rs crates/phy/src/dutycycle.rs crates/phy/src/energy.rs crates/phy/src/params.rs crates/phy/src/propagation.rs crates/phy/src/region.rs crates/phy/src/sensitivity.rs

/root/repo/target/release/deps/libloramon_phy-14a4011c689e2217.rlib: crates/phy/src/lib.rs crates/phy/src/adr.rs crates/phy/src/airtime.rs crates/phy/src/collision.rs crates/phy/src/dutycycle.rs crates/phy/src/energy.rs crates/phy/src/params.rs crates/phy/src/propagation.rs crates/phy/src/region.rs crates/phy/src/sensitivity.rs

/root/repo/target/release/deps/libloramon_phy-14a4011c689e2217.rmeta: crates/phy/src/lib.rs crates/phy/src/adr.rs crates/phy/src/airtime.rs crates/phy/src/collision.rs crates/phy/src/dutycycle.rs crates/phy/src/energy.rs crates/phy/src/params.rs crates/phy/src/propagation.rs crates/phy/src/region.rs crates/phy/src/sensitivity.rs

crates/phy/src/lib.rs:
crates/phy/src/adr.rs:
crates/phy/src/airtime.rs:
crates/phy/src/collision.rs:
crates/phy/src/dutycycle.rs:
crates/phy/src/energy.rs:
crates/phy/src/params.rs:
crates/phy/src/propagation.rs:
crates/phy/src/region.rs:
crates/phy/src/sensitivity.rs:
