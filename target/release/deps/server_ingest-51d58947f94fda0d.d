/root/repo/target/release/deps/server_ingest-51d58947f94fda0d.d: crates/bench/benches/server_ingest.rs

/root/repo/target/release/deps/server_ingest-51d58947f94fda0d: crates/bench/benches/server_ingest.rs

crates/bench/benches/server_ingest.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
