/root/repo/target/release/deps/loramon-2a289c101ad7ae4e.d: src/bin/loramon.rs

/root/repo/target/release/deps/loramon-2a289c101ad7ae4e: src/bin/loramon.rs

src/bin/loramon.rs:
