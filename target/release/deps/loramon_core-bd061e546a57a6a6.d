/root/repo/target/release/deps/loramon_core-bd061e546a57a6a6.d: crates/core/src/lib.rs crates/core/src/buffer.rs crates/core/src/client.rs crates/core/src/command.rs crates/core/src/record.rs crates/core/src/report.rs crates/core/src/status.rs crates/core/src/transport.rs crates/core/src/uplink.rs

/root/repo/target/release/deps/libloramon_core-bd061e546a57a6a6.rlib: crates/core/src/lib.rs crates/core/src/buffer.rs crates/core/src/client.rs crates/core/src/command.rs crates/core/src/record.rs crates/core/src/report.rs crates/core/src/status.rs crates/core/src/transport.rs crates/core/src/uplink.rs

/root/repo/target/release/deps/libloramon_core-bd061e546a57a6a6.rmeta: crates/core/src/lib.rs crates/core/src/buffer.rs crates/core/src/client.rs crates/core/src/command.rs crates/core/src/record.rs crates/core/src/report.rs crates/core/src/status.rs crates/core/src/transport.rs crates/core/src/uplink.rs

crates/core/src/lib.rs:
crates/core/src/buffer.rs:
crates/core/src/client.rs:
crates/core/src/command.rs:
crates/core/src/record.rs:
crates/core/src/report.rs:
crates/core/src/status.rs:
crates/core/src/transport.rs:
crates/core/src/uplink.rs:
