/root/repo/target/release/deps/loramon_sim-4246ffdfef197d2e.d: crates/sim/src/lib.rs crates/sim/src/app.rs crates/sim/src/apps.rs crates/sim/src/channel.rs crates/sim/src/fault.rs crates/sim/src/node.rs crates/sim/src/placement.rs crates/sim/src/rng.rs crates/sim/src/sim.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/release/deps/libloramon_sim-4246ffdfef197d2e.rlib: crates/sim/src/lib.rs crates/sim/src/app.rs crates/sim/src/apps.rs crates/sim/src/channel.rs crates/sim/src/fault.rs crates/sim/src/node.rs crates/sim/src/placement.rs crates/sim/src/rng.rs crates/sim/src/sim.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/release/deps/libloramon_sim-4246ffdfef197d2e.rmeta: crates/sim/src/lib.rs crates/sim/src/app.rs crates/sim/src/apps.rs crates/sim/src/channel.rs crates/sim/src/fault.rs crates/sim/src/node.rs crates/sim/src/placement.rs crates/sim/src/rng.rs crates/sim/src/sim.rs crates/sim/src/time.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/app.rs:
crates/sim/src/apps.rs:
crates/sim/src/channel.rs:
crates/sim/src/fault.rs:
crates/sim/src/node.rs:
crates/sim/src/placement.rs:
crates/sim/src/rng.rs:
crates/sim/src/sim.rs:
crates/sim/src/time.rs:
crates/sim/src/trace.rs:
