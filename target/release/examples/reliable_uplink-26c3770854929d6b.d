/root/repo/target/release/examples/reliable_uplink-26c3770854929d6b.d: examples/reliable_uplink.rs

/root/repo/target/release/examples/reliable_uplink-26c3770854929d6b: examples/reliable_uplink.rs

examples/reliable_uplink.rs:
